"""Plan-cache semantics: keys, LRU, and *exact* invalidation.

The ISSUE acceptance criterion pinned here: registry publish / activate
/ rollback must evict exactly the entries whose dependency set contains
the touched (site, class) — and cached plans for untouched classes must
come back **byte-identical** (the same object, same description text).
"""

import pytest

from repro.engine.predicate import Comparison
from repro.mdbs.gquery import GlobalJoinQuery
from repro.mdbs.optimizer import CostEstimate, GlobalPlan
from repro.serving import PlanCache, query_key

from .conftest import query_mix


def make_query(left_table="R1", right_table="R2", predicate=None):
    return GlobalJoinQuery(
        "oracle_site", left_table, "db2_site", right_table, "a4", "a4",
        (f"{left_table}.a1", f"{right_table}.a2"),
        left_predicate=predicate if predicate is not None else Comparison("a3", "<", 500),
    )


def make_plan(query, deps):
    """A synthetic plan whose estimates depend on *deps*:
    {(site, class_label): state}."""
    estimates = [
        CostEstimate(f"{label} at {site}", 1.0, class_label=label, state=state, site=site)
        for (site, label), state in deps.items()
    ]
    estimates.append(CostEstimate("ship 10 tuples", 0.1))  # model-less component
    return GlobalPlan(query=query, components=None, join_site="right", estimates=estimates)


def resolver(states):
    """resolve_state callback serving from a {(site, label): state} dict."""
    return lambda site, label: states.get((site, label))


class TestKeys:
    def test_query_key_includes_predicates(self):
        a = make_query(predicate=Comparison("a3", "<", 500))
        b = make_query(predicate=Comparison("a3", "<", 501))
        assert query_key(a) != query_key(b)
        assert query_key(a) == query_key(make_query(predicate=Comparison("a3", "<", 500)))

    def test_state_change_misses_and_both_states_coexist(self):
        cache = PlanCache()
        query = make_query()
        low = make_plan(query, {("oracle_site", "G1"): 0})
        high = make_plan(query, {("oracle_site", "G1"): 2})
        cache.put(query, [low], low)
        cache.put(query, [high], high)
        assert cache.get(query, resolver({("oracle_site", "G1"): 0})) is low
        assert cache.get(query, resolver({("oracle_site", "G1"): 2})) is high
        assert cache.get(query, resolver({("oracle_site", "G1"): 1})) is None
        assert cache.hits == 2 and cache.misses == 1

    def test_unresolvable_state_is_a_miss(self):
        cache = PlanCache()
        query = make_query()
        plan = make_plan(query, {("oracle_site", "G1"): 0})
        cache.put(query, [plan], plan)
        assert cache.get(query, resolver({})) is None  # model gone -> None

    def test_model_less_plan_is_not_cached(self):
        cache = PlanCache()
        query = make_query()
        plan = GlobalPlan(
            query=query, components=None, join_site="left",
            estimates=[CostEstimate("ship", 0.1)],
        )
        cache.put(query, [plan], plan)
        assert len(cache) == 0

    def test_dependencies_union_all_candidates(self):
        """The dep set covers both candidate plans, not just the winner."""
        cache = PlanCache()
        query = make_query()
        winner = make_plan(query, {("oracle_site", "G1"): 0})
        loser = make_plan(query, {("db2_site", "G3"): 1})
        cache.put(query, [winner, loser], winner)
        full = resolver({("oracle_site", "G1"): 0, ("db2_site", "G3"): 1})
        assert cache.get(query, full) is winner
        # Missing either dependency's state -> miss, never a wrong hit.
        assert cache.get(query, resolver({("oracle_site", "G1"): 0})) is None


class TestLRU:
    def test_capacity_evicts_oldest(self):
        cache = PlanCache(capacity=2)
        queries = [make_query(left_table=t) for t in ("R1", "R2", "R3")]
        plans = [make_plan(q, {("oracle_site", "G1"): 0}) for q in queries]
        for query, plan in zip(queries, plans):
            cache.put(query, [plan], plan)
        states = resolver({("oracle_site", "G1"): 0})
        assert cache.get(queries[0], states) is None  # oldest evicted
        assert cache.get(queries[1], states) is plans[1]
        assert cache.get(queries[2], states) is plans[2]
        assert cache.evictions == 1

    def test_hits_refresh_recency(self):
        cache = PlanCache(capacity=2)
        queries = [make_query(left_table=t) for t in ("R1", "R2", "R3")]
        plans = [make_plan(q, {("oracle_site", "G1"): 0}) for q in queries]
        states = resolver({("oracle_site", "G1"): 0})
        cache.put(queries[0], [plans[0]], plans[0])
        cache.put(queries[1], [plans[1]], plans[1])
        cache.get(queries[0], states)  # R1 is now the most recent
        cache.put(queries[2], [plans[2]], plans[2])  # evicts R2
        assert cache.get(queries[0], states) is plans[0]
        assert cache.get(queries[1], states) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestExactInvalidation:
    def put_two(self, cache):
        q1, q2 = make_query(left_table="R1"), make_query(left_table="R3")
        p1 = make_plan(q1, {("oracle_site", "G1"): 0, ("db2_site", "G3"): 1})
        p2 = make_plan(q2, {("oracle_site", "G3"): 2})
        cache.put(q1, [p1], p1)
        cache.put(q2, [p2], p2)
        return (q1, p1), (q2, p2)

    def test_evicts_exactly_the_dependent_entries(self):
        cache = PlanCache()
        (q1, p1), (q2, p2) = self.put_two(cache)
        assert cache.invalidate_model("db2_site", "G3") == 1
        assert cache.invalidated == 1
        survivor = cache.get(q2, resolver({("oracle_site", "G3"): 2}))
        assert survivor is p2  # byte-identical: the very same object
        assert survivor.describe() == p2.describe()
        gone = cache.get(
            q1, resolver({("oracle_site", "G1"): 0, ("db2_site", "G3"): 1})
        )
        assert gone is None

    def test_untouched_pair_evicts_nothing(self):
        cache = PlanCache()
        self.put_two(cache)
        assert cache.invalidate_model("db2_site", "G9") == 0
        assert len(cache) == 2

    def test_reput_after_invalidation_works(self):
        cache = PlanCache()
        (q1, p1), _ = self.put_two(cache)
        cache.invalidate_model("oracle_site", "G1")
        fresh = make_plan(q1, {("oracle_site", "G1"): 1, ("db2_site", "G3"): 1})
        cache.put(q1, [fresh], fresh)
        states = resolver({("oracle_site", "G1"): 1, ("db2_site", "G3"): 1})
        assert cache.get(q1, states) is fresh


class TestRegistryEvents:
    """End-to-end against the real registry and real optimizer plans."""

    def fill(self, server, cache, mix=None):
        """Optimize the whole mix once and cache every decision."""
        optimizer = server.optimizer()
        entries = {}
        for query in mix if mix is not None else query_mix():
            candidates = optimizer.plans(query)
            chosen = min(candidates, key=lambda p: p.estimated_seconds)
            cache.put(query, candidates, chosen)
            entries[query] = chosen
        return entries

    def current_states(self, server):
        """Resolver mirroring the front end, from live registry + probes."""
        def resolve(site, label):
            model = server.catalog.registry.active_model(site, label)
            cost = server.probing.probing_cost(site)
            return model.num_states // 2 if cost is None else model.state_for(cost)
        return resolve

    def test_publish_activate_rollback_evict_dependents(self, serving_mdbs):
        server, _ = serving_mdbs
        cache = PlanCache(server.catalog.registry)
        try:
            # The cross-site mix plus a db2-only join: the latter cannot
            # depend on any oracle_site model, so it is a guaranteed
            # survivor of an oracle-side invalidation.
            mix = query_mix() + [
                GlobalJoinQuery(
                    "db2_site", "R1", "db2_site", "R2", "a4", "a4",
                    ("R1.a1", "R2.a2"),
                )
            ]
            entries = self.fill(server, cache, mix)
            resolve = self.current_states(server)
            # Partition the mix by dependence on some oracle-side model.
            target = next(
                (e.site, e.class_label)
                for plan in entries.values()
                for e in plan.estimates
                if e.site == "oracle_site" and e.class_label is not None
            )
            dependent = [
                q for q, plan in entries.items()
                if any((e.site, e.class_label) == target for e in plan.estimates)
            ]
            untouched = [q for q in entries if q not in dependent]
            assert dependent, "mix must exercise an oracle-side model"
            assert untouched, "the db2-only join must not depend on it"

            # Re-publishing the active model is a new version: an event.
            model = server.catalog.registry.active_model(*target)
            server.store_cost_model(target[0], model)
            for query in dependent:
                assert cache.get(query, resolve) is None
            for query in untouched:
                assert cache.get(query, resolve) is entries[query]

            # Roll back to the previous version: evicts dependents again.
            refreshed = self.fill(server, cache, mix)
            server.rollback_model(*target)
            for query in dependent:
                assert cache.get(query, resolve) is None
            for query in untouched:
                assert cache.get(query, resolve) is refreshed[query]
        finally:
            cache.close()

    def test_close_detaches_from_registry(self, serving_mdbs):
        server, _ = serving_mdbs
        cache = PlanCache(server.catalog.registry)
        entries = self.fill(server, cache)
        cache.close()
        model = server.catalog.registry.active_model("db2_site", "G3")
        server.store_cost_model("db2_site", model)  # no longer observed
        assert len(cache) == len(entries)


class TestModelTagKeying:
    """The (version, form) tag: online forms change coefficients with no
    registry event, so the tag is the only safeguard keying cached plans
    to the exact model that scored them."""

    def test_version_and_form_join_the_key(self):
        tags = {("oracle_site", "G1"): (1, "mlr.ols")}
        cache = PlanCache(model_tag=lambda site, label: tags.get((site, label)))
        query = make_query()
        plan = make_plan(query, {("oracle_site", "G1"): 0})
        cache.put(query, [plan], plan)
        states = resolver({("oracle_site", "G1"): 0})
        assert cache.get(query, states) is plan

        tags[("oracle_site", "G1")] = (2, "mlr.ols")  # new version
        assert cache.get(query, states) is None
        tags[("oracle_site", "G1")] = (1, "mlr.rls")  # same version, new form
        assert cache.get(query, states) is None
        tags[("oracle_site", "G1")] = (1, "mlr.ols")  # original tag again
        assert cache.get(query, states) is plan

    def test_plans_per_tag_coexist(self):
        tags = {("oracle_site", "G1"): (1, "mlr.ols")}
        cache = PlanCache(model_tag=lambda site, label: tags.get((site, label)))
        query = make_query()
        ols_plan = make_plan(query, {("oracle_site", "G1"): 0})
        rls_plan = make_plan(query, {("oracle_site", "G1"): 0})
        cache.put(query, [ols_plan], ols_plan)
        tags[("oracle_site", "G1")] = (1, "mlr.rls")
        cache.put(query, [rls_plan], rls_plan)
        states = resolver({("oracle_site", "G1"): 0})
        assert cache.get(query, states) is rls_plan
        tags[("oracle_site", "G1")] = (1, "mlr.ols")
        assert cache.get(query, states) is ols_plan

    def test_missing_tag_is_uncacheable(self):
        cache = PlanCache(model_tag=lambda site, label: None)
        query = make_query()
        plan = make_plan(query, {("oracle_site", "G1"): 0})
        cache.put(query, [plan], plan)  # model vanished mid-flight
        assert len(cache) == 0
        assert cache.get(query, resolver({("oracle_site", "G1"): 0})) is None

    def test_no_resolver_keeps_pure_state_keying(self):
        cache = PlanCache()
        query = make_query()
        plan = make_plan(query, {("oracle_site", "G1"): 0})
        cache.put(query, [plan], plan)
        ((qkey, states),) = cache.entries()
        # Default keys are exactly (site, label, state) — byte-identical
        # to the pre-strategy cache.
        assert states == (("oracle_site", "G1", 0),)
