"""Front-end behavior: determinism guard, concurrency, plan sourcing.

The determinism guard is an ISSUE acceptance criterion: a pool at
concurrency 1 with the plan cache off must produce byte-identical plan
choices (and results) to the synchronous ``MDBSServer.execute`` path.
The tracing tests pin the other acceptance criterion: one *connected*
span tree per request, across the submit→worker thread hop.
"""

import pytest

from repro import obs
from repro.mdbs.gquery import GlobalJoinQuery
from repro.serving import ServingConfig, ServingFrontEnd

from .conftest import query_mix


def run_sync(server, sites, queries):
    """The reference: synchronous executes from a snapshotted state."""
    snapshot = {n: s.database.save_state() for n, s in sites.items()}
    server.probing.invalidate()
    outcomes = [server.execute(q) for q in queries]
    for name, site in sites.items():
        site.database.restore_state(snapshot[name])
    server.probing.invalidate()
    return outcomes


class TestDeterminismGuard:
    def test_pool_of_one_matches_synchronous_server(self, serving_mdbs):
        """workers=1 + plan_cache=False == plain server.execute, byte for
        byte: plan text, estimates, result rows, observed timings."""
        server, sites = serving_mdbs
        queries = query_mix()
        reference = run_sync(server, sites, queries)

        config = ServingConfig(workers=1, plan_cache=False)
        with ServingFrontEnd(server, config) as frontend:
            tickets = frontend.serve(queries)

        assert [t.status for t in tickets] == ["completed"] * len(queries)
        for ticket, ref in zip(tickets, reference):
            assert ticket.execution.plan.describe() == ref.plan.describe()
            assert ticket.execution.plan.join_site == ref.plan.join_site
            assert ticket.execution.rows == ref.rows
            assert ticket.execution.steps == ref.steps
            assert ticket.plan_source == "optimizer"

    def test_cache_off_config_has_no_cache(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(plan_cache=False))
        assert frontend.plan_cache is None


class TestConcurrentServing:
    def test_pool_completes_a_repeated_class_workload(self, serving_mdbs):
        server, _ = serving_mdbs
        distinct = query_mix()
        repeats = distinct * 12  # 72 requests over 6 distinct queries
        config = ServingConfig(workers=8)
        with ServingFrontEnd(server, config) as frontend:
            # One warming pass, then the flood: without it the 8 workers
            # cold-start-optimize the same queries concurrently before
            # any put lands (each such race is an honest miss).
            warm = frontend.serve(distinct)
            tickets = frontend.serve(repeats)
            stats = frontend.stats()

        queries = distinct + repeats
        tickets = warm + tickets
        assert all(t.ok for t in tickets), [t.error for t in tickets if not t.ok]
        assert stats.completed == len(queries)
        assert stats.dropped == 0
        # Repeats of a query within unchanged contention states must be
        # served from the plan cache (ISSUE acceptance: > 90%).
        assert stats.plan_cache_hit_rate > 0.9
        # A cached plan is the same decision the optimizer would make:
        # every repeat of a query picks the same join site.
        by_query = {}
        for ticket in tickets:
            key = str(ticket.query)
            site = ticket.execution.plan.join_site
            assert by_query.setdefault(key, site) == site

    def test_cache_and_optimizer_sources_are_labelled(self, serving_mdbs):
        server, _ = serving_mdbs
        queries = query_mix()
        config = ServingConfig(workers=1)
        with ServingFrontEnd(server, config) as frontend:
            first = frontend.serve(queries)
            second = frontend.serve(queries)
        assert [t.plan_source for t in first] == ["optimizer"] * len(queries)
        assert [t.plan_source for t in second] == ["cache"] * len(queries)

    def test_tickets_expose_real_latency(self, serving_mdbs):
        server, _ = serving_mdbs
        with ServingFrontEnd(server, ServingConfig(workers=2)) as frontend:
            [ticket] = frontend.serve(query_mix()[:1])
        assert ticket.done and ticket.ok
        assert ticket.wait_seconds is not None and ticket.wait_seconds >= 0.0
        assert ticket.latency_seconds is not None
        assert ticket.latency_seconds >= ticket.wait_seconds


class TestTracing:
    def test_each_request_yields_one_connected_tree(self, serving_mdbs):
        """Acceptance: through a multi-worker pool, every ticket's spans
        form a single tree rooted at its detached ``serving.request``."""
        server, _ = serving_mdbs
        config = ServingConfig(workers=4, trace_id_prefix="t-")
        with obs.recording() as tracer:
            with ServingFrontEnd(server, config) as frontend:
                tickets = frontend.serve(query_mix())
        assert all(t.ok for t in tickets)
        for ticket in tickets:
            assert ticket.trace_id == f"t-q{ticket.index:06d}"
            spans = tracer.trace(ticket.trace_id)
            by_id = {s.span_id: s for s in spans}
            roots = [s for s in spans if s.parent_id is None]
            assert [r.name for r in roots] == ["serving.request"]
            for span in spans:
                # Every span's parent chain ends at the root: no orphans,
                # even for spans recorded on a different worker thread.
                seen = set()
                while span.parent_id is not None:
                    assert span.span_id not in seen
                    seen.add(span.span_id)
                    span = by_id[span.parent_id]
                assert span.name == "serving.request"
            names = {s.name for s in spans}
            assert {"serving.queue", "serving.plan", "serving.execute"} <= names
            root = roots[0]
            assert root.attributes["status"] == "completed"

    def test_plan_spans_carry_decision_provenance(self, serving_mdbs):
        server, _ = serving_mdbs
        config = ServingConfig(workers=1)
        with obs.recording() as tracer:
            with ServingFrontEnd(server, config) as frontend:
                [first] = frontend.serve(query_mix()[:1])
                [repeat] = frontend.serve(query_mix()[:1])

        def plan_span(ticket):
            return next(
                s
                for s in tracer.trace(ticket.trace_id)
                if s.name == "serving.plan"
            )

        miss, hit = plan_span(first), plan_span(repeat)
        assert miss.attributes["source"] == "optimizer"
        assert miss.attributes["cache"] != "hit"
        assert hit.attributes["source"] == "cache"
        assert hit.attributes["cache"] == "hit"
        for attrs in (miss.attributes, hit.attributes):
            assert attrs["join_site"]
            assert attrs["estimated_seconds"] > 0.0
            assert ":" in attrs["models"]  # site/class=vN:form tags
        # The execute span pairs the estimate with the observed outcome.
        exec_span = next(
            s
            for s in tracer.trace(first.trace_id)
            if s.name == "serving.execute"
        )
        assert "estimated_seconds" in exec_span.attributes
        assert "observed_seconds" in exec_span.attributes

    def test_unsampled_requests_record_nothing(self, serving_mdbs):
        server, _ = serving_mdbs
        config = ServingConfig(workers=2, trace_sample_rate=0.0)
        with obs.recording() as tracer:
            with ServingFrontEnd(server, config) as frontend:
                tickets = frontend.serve(query_mix())
                dropped = frontend.sampler.dropped
        assert all(t.ok for t in tickets)
        assert all(t.trace_id is not None for t in tickets)
        assert not any(t.trace_sampled for t in tickets)
        assert tracer.finished() == []
        assert dropped == len(tickets)

    def test_failed_request_is_force_kept_as_a_stub(self, serving_mdbs):
        server, _ = serving_mdbs
        bad = GlobalJoinQuery("oracle_site", "R1", "db2_site", "NOPE", "a4", "a4")
        config = ServingConfig(workers=1, trace_sample_rate=0.0)
        with obs.recording() as tracer:
            with ServingFrontEnd(server, config) as frontend:
                [ticket] = frontend.serve([bad])
                forced = frontend.sampler.forced
        assert ticket.status == "failed"
        (stub,) = tracer.trace(ticket.trace_id)
        assert stub.name == "serving.request"
        assert stub.attributes["status"] == "failed"
        assert forced == 1

    def test_kept_set_is_identical_at_any_worker_count(self, serving_mdbs):
        """Deterministic sampling: same seed + same trace ids => the same
        kept subset, no matter how the pool schedules the requests."""
        server, _ = serving_mdbs
        queries = query_mix() * 4
        kept_sets = []
        for workers in (1, 4):
            config = ServingConfig(
                workers=workers, trace_sample_rate=0.5, trace_seed=3
            )
            with obs.recording() as tracer:
                with ServingFrontEnd(server, config) as frontend:
                    tickets = frontend.serve(queries)
            assert all(t.ok for t in tickets)
            # The hash-kept set is the deterministic contract; accuracy
            # force-keeps may legitimately differ with pool interleaving
            # (the shared tracker sees samples in a different order).
            kept = {t.trace_id for t in tickets if t.trace_sampled}
            retained = {s.trace_id for s in tracer.finished() if s.trace_id}
            assert kept <= retained  # every kept trace still has spans
            kept_sets.append(kept)
        assert kept_sets[0] == kept_sets[1]
        assert 0 < len(kept_sets[0]) < len(queries)

    def test_drift_exemplar_resolves_to_a_full_span_tree(self, serving_mdbs):
        """Integration: the trace id a drift event embeds as an exemplar
        points at a trace the sampler kept — the postmortem handle."""
        from repro.obs.quality import DriftDetector, DriftPolicy

        server, _ = serving_mdbs
        config = ServingConfig(workers=2)
        with obs.recording() as tracer:
            with ServingFrontEnd(server, config) as frontend:
                tickets = frontend.serve(query_mix())
            # A burst of out-of-band samples against one served trace:
            # the worst-error exemplar slot now holds its trace id.
            victim = tickets[0]
            for _ in range(32):
                server.accuracy.record(
                    "oracle_site",
                    "G1",
                    0,
                    predicted=1.0,
                    actual=16.0,
                    trace_id=victim.trace_id,
                )
            detector = DriftDetector(
                DriftPolicy(min_samples=12, probe_escape_fraction=None)
            )
            events = detector.check(
                server.accuracy, "oracle_site", {"G1": 0}, now=0.0
            )
        assert events, "the bad-sample burst raised no drift event"
        exemplars = events[0].stats.get("exemplar_traces")
        assert exemplars and victim.trace_id in exemplars
        spans = tracer.trace(victim.trace_id)
        assert {s.name for s in spans} >= {
            "serving.request",
            "serving.queue",
            "serving.plan",
            "serving.execute",
        }


class TestLifecycle:
    def test_submit_requires_start(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1))
        with pytest.raises(RuntimeError):
            frontend.submit(query_mix()[0])

    def test_submit_after_close_raises(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1)).start()
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.submit(query_mix()[0])

    def test_close_is_idempotent_and_start_after_close_raises(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1)).start()
        frontend.close()
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.start()

    def test_failed_request_does_not_kill_its_worker(self, serving_mdbs):
        server, _ = serving_mdbs
        bad = GlobalJoinQuery("oracle_site", "R1", "db2_site", "NOPE", "a4", "a4")
        with ServingFrontEnd(server, ServingConfig(workers=1)) as frontend:
            failed = frontend.serve([bad])[0]
            ok = frontend.serve(query_mix()[:1])[0]
            stats = frontend.stats()
        assert failed.status == "failed"
        assert isinstance(failed.error, Exception)
        assert ok.ok
        assert stats.failed == 1 and stats.completed == 1
