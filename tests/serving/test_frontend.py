"""Front-end behavior: determinism guard, concurrency, plan sourcing.

The determinism guard is an ISSUE acceptance criterion: a pool at
concurrency 1 with the plan cache off must produce byte-identical plan
choices (and results) to the synchronous ``MDBSServer.execute`` path.
"""

import pytest

from repro.mdbs.gquery import GlobalJoinQuery
from repro.serving import ServingConfig, ServingFrontEnd

from .conftest import query_mix


def run_sync(server, sites, queries):
    """The reference: synchronous executes from a snapshotted state."""
    snapshot = {n: s.database.save_state() for n, s in sites.items()}
    server.probing.invalidate()
    outcomes = [server.execute(q) for q in queries]
    for name, site in sites.items():
        site.database.restore_state(snapshot[name])
    server.probing.invalidate()
    return outcomes


class TestDeterminismGuard:
    def test_pool_of_one_matches_synchronous_server(self, serving_mdbs):
        """workers=1 + plan_cache=False == plain server.execute, byte for
        byte: plan text, estimates, result rows, observed timings."""
        server, sites = serving_mdbs
        queries = query_mix()
        reference = run_sync(server, sites, queries)

        config = ServingConfig(workers=1, plan_cache=False)
        with ServingFrontEnd(server, config) as frontend:
            tickets = frontend.serve(queries)

        assert [t.status for t in tickets] == ["completed"] * len(queries)
        for ticket, ref in zip(tickets, reference):
            assert ticket.execution.plan.describe() == ref.plan.describe()
            assert ticket.execution.plan.join_site == ref.plan.join_site
            assert ticket.execution.rows == ref.rows
            assert ticket.execution.steps == ref.steps
            assert ticket.plan_source == "optimizer"

    def test_cache_off_config_has_no_cache(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(plan_cache=False))
        assert frontend.plan_cache is None


class TestConcurrentServing:
    def test_pool_completes_a_repeated_class_workload(self, serving_mdbs):
        server, _ = serving_mdbs
        distinct = query_mix()
        repeats = distinct * 12  # 72 requests over 6 distinct queries
        config = ServingConfig(workers=8)
        with ServingFrontEnd(server, config) as frontend:
            # One warming pass, then the flood: without it the 8 workers
            # cold-start-optimize the same queries concurrently before
            # any put lands (each such race is an honest miss).
            warm = frontend.serve(distinct)
            tickets = frontend.serve(repeats)
            stats = frontend.stats()

        queries = distinct + repeats
        tickets = warm + tickets
        assert all(t.ok for t in tickets), [t.error for t in tickets if not t.ok]
        assert stats.completed == len(queries)
        assert stats.dropped == 0
        # Repeats of a query within unchanged contention states must be
        # served from the plan cache (ISSUE acceptance: > 90%).
        assert stats.plan_cache_hit_rate > 0.9
        # A cached plan is the same decision the optimizer would make:
        # every repeat of a query picks the same join site.
        by_query = {}
        for ticket in tickets:
            key = str(ticket.query)
            site = ticket.execution.plan.join_site
            assert by_query.setdefault(key, site) == site

    def test_cache_and_optimizer_sources_are_labelled(self, serving_mdbs):
        server, _ = serving_mdbs
        queries = query_mix()
        config = ServingConfig(workers=1)
        with ServingFrontEnd(server, config) as frontend:
            first = frontend.serve(queries)
            second = frontend.serve(queries)
        assert [t.plan_source for t in first] == ["optimizer"] * len(queries)
        assert [t.plan_source for t in second] == ["cache"] * len(queries)

    def test_tickets_expose_real_latency(self, serving_mdbs):
        server, _ = serving_mdbs
        with ServingFrontEnd(server, ServingConfig(workers=2)) as frontend:
            [ticket] = frontend.serve(query_mix()[:1])
        assert ticket.done and ticket.ok
        assert ticket.wait_seconds is not None and ticket.wait_seconds >= 0.0
        assert ticket.latency_seconds is not None
        assert ticket.latency_seconds >= ticket.wait_seconds


class TestLifecycle:
    def test_submit_requires_start(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1))
        with pytest.raises(RuntimeError):
            frontend.submit(query_mix()[0])

    def test_submit_after_close_raises(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1)).start()
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.submit(query_mix()[0])

    def test_close_is_idempotent_and_start_after_close_raises(self, serving_mdbs):
        server, _ = serving_mdbs
        frontend = ServingFrontEnd(server, ServingConfig(workers=1)).start()
        frontend.close()
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.start()

    def test_failed_request_does_not_kill_its_worker(self, serving_mdbs):
        server, _ = serving_mdbs
        bad = GlobalJoinQuery("oracle_site", "R1", "db2_site", "NOPE", "a4", "a4")
        with ServingFrontEnd(server, ServingConfig(workers=1)) as frontend:
            failed = frontend.serve([bad])[0]
            ok = frontend.serve(query_mix()[:1])[0]
            stats = frontend.stats()
        assert failed.status == "failed"
        assert isinstance(failed.error, Exception)
        assert ok.ok
        assert stats.failed == 1 and stats.completed == 1
