"""Admission control: bounds, policies, deadlines, config validation.

The rejection tests make the pool controllably busy by holding a site's
execution lock from the test thread: the single worker blocks inside
``server.execute`` on that lock, so queue and in-flight bounds fill
deterministically with no sleeps.
"""

import threading

import pytest

from repro.serving import ADMISSION_POLICIES, ServingConfig, ServingFrontEnd

from .conftest import query_mix


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.workers >= 1
        assert config.admission_policy in ADMISSION_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": 0},
            {"max_in_flight": 0},
            {"admission_policy": "drop"},
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"plan_cache_capacity": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class _HeldSites:
    """Context manager pinning every site lock the workload touches."""

    def __init__(self, server, queries):
        self.locks = sorted(
            {server.site_locks[s] for q in queries for s in (q.left_site, q.right_site)},
            key=id,
        )

    def __enter__(self):
        for lock in self.locks:
            lock.acquire()
        return self

    def __exit__(self, *exc_info):
        for lock in reversed(self.locks):
            lock.release()


class TestRejectPolicy:
    def test_full_queue_rejects_instead_of_blocking(self, serving_mdbs):
        server, _ = serving_mdbs
        query = query_mix()[0]
        config = ServingConfig(
            workers=1, queue_depth=1, admission_policy="reject", plan_cache=False
        )
        with ServingFrontEnd(server, config) as frontend:
            with _HeldSites(server, [query]) as _:
                running = frontend.submit(query)  # picked up, blocks on the site
                # Give the worker a moment to dequeue the first ticket.
                while frontend._queue.qsize() > 0:
                    threading.Event().wait(0.001)
                queued = frontend.submit(query)  # fills the depth-1 queue
                rejected = frontend.submit(query)  # nowhere to go
                assert rejected.status == "rejected"
                assert rejected.done and not rejected.ok
                assert rejected.execution is None
            assert running.wait(30.0) and running.ok
            assert queued.wait(30.0) and queued.ok
            stats = frontend.stats()
        assert stats.submitted == 3
        assert stats.admitted == 2
        assert stats.rejected == 1
        assert stats.dropped == 1

    def test_max_in_flight_bounds_total_admissions(self, serving_mdbs):
        server, _ = serving_mdbs
        query = query_mix()[0]
        config = ServingConfig(
            workers=2, queue_depth=64, max_in_flight=1,
            admission_policy="reject", plan_cache=False,
        )
        with ServingFrontEnd(server, config) as frontend:
            with _HeldSites(server, [query]):
                first = frontend.submit(query)
                second = frontend.submit(query)  # in-flight slot is taken
                assert second.status == "rejected"
            assert first.wait(30.0) and first.ok
            # The slot freed on completion: admissions work again.
            third = frontend.serve([query])[0]
            assert third.ok


class TestBlockPolicy:
    def test_backpressure_never_drops(self, serving_mdbs):
        server, _ = serving_mdbs
        queries = query_mix() * 4
        config = ServingConfig(
            workers=2, queue_depth=2, max_in_flight=4, admission_policy="block"
        )
        with ServingFrontEnd(server, config) as frontend:
            tickets = frontend.serve(queries)
            stats = frontend.stats()
        assert all(t.ok for t in tickets)
        assert stats.dropped == 0
        assert stats.admitted == stats.submitted == len(queries)


class TestDeadlines:
    def test_expired_queue_wait_sheds_the_request(self, serving_mdbs):
        server, _ = serving_mdbs
        query = query_mix()[0]
        config = ServingConfig(
            workers=1, queue_depth=8, deadline_seconds=0.05, plan_cache=False
        )
        with ServingFrontEnd(server, config) as frontend:
            with _HeldSites(server, [query]):
                running = frontend.submit(query)
                # Ensure the worker dequeued it (and passed its deadline
                # check) before the stale request goes in behind it.
                while frontend._queue.qsize() > 0:
                    threading.Event().wait(0.001)
                stale = frontend.submit(query)
                # Hold the pool past the deadline before releasing it.
                threading.Event().wait(0.1)
            assert running.wait(30.0)
            assert stale.wait(30.0)
            stats = frontend.stats()
        assert stale.status == "timed_out"
        assert stale.execution is None
        assert stats.timed_out == 1
        assert stats.dropped == 1
