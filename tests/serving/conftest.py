"""Serving-layer test fixtures: a two-site MDBS plus a query mix.

The server fixture is session-scoped (model derivation is the slow
part); the autouse ``_hermetic_serving`` fixture snapshots both sites'
databases and rewinds them after every test, so executions in one test
never leak simulated time or engine state into the next.
"""

import pytest

from repro.core.builder import CostModelBuilder
from repro.core.classification import G1, G3
from repro.engine.predicate import Comparison
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.mdbs.agent import MDBSAgent
from repro.mdbs.gquery import GlobalJoinQuery
from repro.mdbs.server import MDBSServer
from repro.workload import make_site

SERVING_TABLES = ["R1", "R2", "R3", "R4"]


@pytest.fixture(scope="session")
def serving_mdbs():
    """Two dynamic sites with G1 and G3 cost models registered."""
    oracle = make_site(
        "oracle_site", profile=ORACLE_LIKE, environment_kind="uniform",
        scale=0.01, seed=71,
    )
    db2 = make_site(
        "db2_site", profile=DB2_LIKE, environment_kind="uniform",
        scale=0.01, seed=72,
    )
    # A probe TTL far beyond any test's simulated horizon: contention
    # states stay pinned within a test (each test starts cold — the
    # hermetic fixture below invalidates all readings).
    server = MDBSServer(probe_ttl=1e9)
    sites = {site.name: site for site in (oracle, db2)}
    for site in sites.values():
        server.register_agent(MDBSAgent(site.database))
        builder = CostModelBuilder(site.database)
        for query_class, count in ((G1, 80), (G3, 100)):
            queries = site.generator.queries_for(
                query_class, count, tables=SERVING_TABLES
            )
            outcome = builder.build(query_class, queries, algorithm="iupma")
            server.store_cost_model(site.name, outcome.model)
    return server, sites


@pytest.fixture(autouse=True)
def _hermetic_serving(serving_mdbs):
    """Rewind databases and drop probe readings after every test."""
    server, sites = serving_mdbs
    snapshot = {name: site.database.save_state() for name, site in sites.items()}
    yield
    for name, site in sites.items():
        site.database.restore_state(snapshot[name])
    server.probing.invalidate()


def query_mix():
    """Six structurally distinct cross-site joins (a repeated-class mix)."""
    return [
        GlobalJoinQuery(
            "oracle_site", "R1", "db2_site", "R2", "a4", "a4",
            ("R1.a1", "R2.a2"),
        ),
        GlobalJoinQuery(
            "oracle_site", "R2", "db2_site", "R3", "a4", "a4",
            ("R2.a1", "R3.a2"),
            left_predicate=Comparison("a3", "<", 500),
            right_predicate=Comparison("a7", ">", 25000),
        ),
        GlobalJoinQuery(
            "db2_site", "R1", "oracle_site", "R3", "a4", "a4",
            ("R1.a2", "R3.a1"),
            left_predicate=Comparison("a5", "<", 40000),
        ),
        GlobalJoinQuery(
            "oracle_site", "R3", "db2_site", "R4", "a4", "a4",
            ("R3.a1", "R4.a2"),
            right_predicate=Comparison("a6", ">", 250),
        ),
        GlobalJoinQuery(
            "db2_site", "R2", "oracle_site", "R4", "a4", "a4",
            ("R2.a2", "R4.a3"),
        ),
        GlobalJoinQuery(
            "oracle_site", "R4", "db2_site", "R1", "a4", "a4",
            ("R4.a1", "R1.a3"),
            left_predicate=Comparison("a2", "<", 800),
        ),
    ]
