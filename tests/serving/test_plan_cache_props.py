"""Property tests: plan-cache invalidation tracks registry events exactly.

The cache's safety contract is *surgical* invalidation: whenever the
registry publishes, activates, or rolls back a version for one
``(site, class)``, the cache must evict every entry whose dependency set
contains that pair — and ONLY those.  Hypothesis drives randomized
interleavings of plan installs and registry lifecycle events against a
mirror model of the expected surviving entries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdbs.gquery import GlobalJoinQuery
from repro.mdbs.optimizer import CostEstimate, GlobalPlan
from repro.mdbs.registry import (
    CostModelRegistry,
    CostModelRegistryError,
    ModelProvenance,
)
from repro.serving.plan_cache import PlanCache, query_key

SITES = ("site_a", "site_b")
CLASSES = ("G1", "G3")
#: Every (site, class) a plan may depend on.
DEPS = tuple((site, label) for site in SITES for label in CLASSES)

QUERIES = tuple(
    GlobalJoinQuery(
        "site_a",
        f"R{i + 1}",
        "site_b",
        f"R{(i + 1) % 6 + 1}",
        "a4",
        "a4",
        (f"R{i + 1}.a1",),
    )
    for i in range(6)
)


class StubModel:
    """Just enough of a cost model for the registry to version it."""

    def __init__(self, class_label: str) -> None:
        self.class_label = class_label


def make_plan(query, deps, states):
    """A plan whose estimates read exactly *deps* in *states*."""
    return GlobalPlan(
        query=query,
        components=None,
        join_site="left",
        estimates=[
            CostEstimate(
                description=f"{site}/{label}",
                seconds=1.0,
                class_label=label,
                state=state,
                site=site,
            )
            for (site, label), state in zip(deps, states)
        ],
    )


#: One scripted step: install a plan, or fire a registry lifecycle event.
puts = st.tuples(
    st.just("put"),
    st.integers(0, len(QUERIES) - 1),
    st.sets(st.sampled_from(DEPS), min_size=1, max_size=len(DEPS)),
    st.integers(0, 2),
)
events = st.tuples(
    st.sampled_from(["publish", "activate", "rollback"]),
    st.sampled_from(DEPS),
)
scripts = st.lists(st.one_of(puts, events), max_size=60)


@settings(max_examples=100, deadline=None)
@given(script=scripts)
def test_registry_events_evict_exactly_dependent_entries(script):
    registry = CostModelRegistry()
    for site, label in DEPS:
        registry.publish(site, StubModel(label), provenance=ModelProvenance())
    cache = PlanCache(registry=registry, capacity=4096)
    #: Mirror of expected residency: full_key -> deps at install time.
    mirror = {}

    for step in script:
        if step[0] == "put":
            _, qidx, dep_set, state = step
            deps = tuple(sorted(dep_set))
            states = [state] * len(deps)
            query = QUERIES[qidx]
            cache.put(query, [make_plan(query, deps, states)], make_plan(query, deps, states))
            full_key = (
                query_key(query),
                tuple((s, c, state) for s, c in deps),
            )
            mirror[full_key] = deps
        else:
            action, (site, label) = step
            try:
                if action == "publish":
                    registry.publish(
                        site, StubModel(label), provenance=ModelProvenance()
                    )
                elif action == "activate":
                    current = registry.active_version(site, label).version
                    registry.activate(site, label, current)
                else:
                    registry.rollback(site, label)
            except CostModelRegistryError:
                # An impossible rollback fires no event: nothing evicted.
                assert set(cache.entries()) == set(mirror)
                continue
            mirror = {
                key: deps
                for key, deps in mirror.items()
                if (site, label) not in deps
            }
        assert set(cache.entries()) == set(mirror)


@settings(max_examples=60, deadline=None)
@given(
    dep_set=st.sets(st.sampled_from(DEPS), min_size=1, max_size=len(DEPS)),
    touched=st.sampled_from(DEPS),
    state=st.integers(0, 2),
)
def test_lookup_misses_only_after_dependent_event(dep_set, touched, state):
    """A publish hits exactly the plans that scored through that model."""
    registry = CostModelRegistry()
    for site, label in DEPS:
        registry.publish(site, StubModel(label), provenance=ModelProvenance())
    cache = PlanCache(registry=registry, capacity=64)
    deps = tuple(sorted(dep_set))
    query = QUERIES[0]
    plan = make_plan(query, deps, [state] * len(deps))
    cache.put(query, [plan], plan)

    def resolve(site, label):
        return state

    assert cache.get(query, resolve) is plan

    site, label = touched
    registry.publish(site, StubModel(label), provenance=ModelProvenance())
    if touched in deps:
        assert cache.get(query, resolve) is None
        assert cache.invalidated >= 1
    else:
        assert cache.get(query, resolve) is plan
