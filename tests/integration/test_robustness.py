"""Robustness and failure-injection tests for the full pipeline."""

import numpy as np
import pytest

from repro.core import (
    BuilderConfig,
    CostModelBuilder,
    G1,
    StatesConfig,
    validate_model,
)
from repro.engine import Column, DataType, LocalDatabase, SelectQuery
from repro.env import dynamic_uniform_environment
from repro.workload import make_site


class TestExtremeNoise:
    def test_pipeline_survives_heavy_measurement_noise(self):
        site = make_site(
            "noisy", environment_kind="uniform", scale=0.008, seed=81,
            noise_sigma=0.4,
        )
        builder = CostModelBuilder(site.database)
        outcome = builder.build(G1, site.generator.queries_for(G1, 100))
        # The model may be rough, but it must exist, be finite, and
        # retain the contention signal.
        assert np.all(np.isfinite(outcome.model.coefficients))
        assert outcome.model.num_states >= 1
        test = builder.collect(site.generator.queries_for(G1, 30))
        report = validate_model(outcome.model, test)
        assert report.pct_acceptable > 50.0


class TestStaticEnvironmentDegeneration:
    def test_iupma_in_static_environment_returns_one_state(self):
        """With no contention variation, the multi-states method must
        degrade gracefully to the static special case."""
        site = make_site("calm", environment_kind="static", scale=0.008, seed=82)
        builder = CostModelBuilder(site.database)
        outcome = builder.build(G1, site.generator.queries_for(G1, 80), "iupma")
        assert outcome.model.num_states == 1
        assert outcome.model.r_squared > 0.9


class TestDegenerateWorkloads:
    def test_queries_with_empty_results(self):
        db = LocalDatabase(
            "deg", environment=dynamic_uniform_environment(seed=3), seed=3
        )
        rng = np.random.default_rng(0)
        db.create_table(
            "t",
            [Column("a", DataType.INT), Column("b", DataType.INT)],
            [(int(rng.integers(0, 100)), int(rng.integers(0, 100))) for _ in range(800)],
        )
        db.analyze()
        from repro.core import ProbingQuery, collect_observations
        from repro.engine import Comparison

        probe = ProbingQuery(db, SelectQuery("t", ("a",)))
        # Half the sample returns nothing at all.
        queries = [
            SelectQuery("t", ("a",), Comparison("a", "<", 1000 + i)) for i in range(30)
        ] + [
            SelectQuery("t", ("a",), Comparison("a", ">", 1000 + i)) for i in range(30)
        ]
        observations = collect_observations(db, queries, probe)
        builder = CostModelBuilder(db, probe=probe)
        outcome = builder.build_from_observations(observations, G1)
        assert np.all(np.isfinite(outcome.model.coefficients))

    def test_tiny_sample_still_produces_model(self, session_site):
        builder = CostModelBuilder(session_site.database)
        queries = session_site.generator.queries_for(G1, 12)
        outcome = builder.build(G1, queries)
        # Identifiability guard keeps the state count low for 12 points.
        assert outcome.model.num_states <= 2

    def test_single_observation_rejected_cleanly(self, session_site):
        builder = CostModelBuilder(session_site.database)
        queries = session_site.generator.queries_for(G1, 1)
        with pytest.raises(ValueError):
            builder.build(G1, queries)


class TestConfigExtremes:
    def test_zero_tolerance_selection_keeps_basics_only(self, session_g1_build):
        from repro.core import SelectionConfig

        builder, outcome = session_g1_build
        config = BuilderConfig(
            selection=SelectionConfig(backward_tolerance=0.0, forward_gain=0.5)
        )
        strict = CostModelBuilder(builder.database, config=config)
        result = strict.build_from_observations(outcome.observations, G1)
        assert set(result.model.variable_names) <= set(G1.variables.all_names)

    def test_max_states_one_equals_static(self, session_g1_build):
        builder, outcome = session_g1_build
        config = BuilderConfig(states=StatesConfig(max_states=1))
        limited = CostModelBuilder(builder.database, config=config)
        result = limited.build_from_observations(outcome.observations, G1, "iupma")
        assert result.model.num_states == 1

    def test_aggressive_merging_collapses_states(self, session_g1_build):
        builder, outcome = session_g1_build
        config = BuilderConfig(states=StatesConfig(merge_threshold=100.0))
        merged = CostModelBuilder(builder.database, config=config)
        result = merged.build_from_observations(outcome.observations, G1, "iupma")
        assert result.model.num_states == 1
