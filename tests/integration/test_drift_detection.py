"""End-to-end drift loop: shift -> detect -> re-derive -> recover.

Runs the scripted drift-detection experiment once and checks every leg
of the ISSUE acceptance path:

* the contention shift is detected (a ``DriftEvent`` is raised a few
  rounds after the load builder pins the high level),
* ``maintain()`` publishes a **new registry version** whose provenance
  carries the triggering event,
* the rebuilt models put the good-band percentage back up, and
* the counterfactual — stale v1 models, detection disarmed, same load —
  shows the degradation in the accuracy table instead.
"""

import pytest

from repro.experiments.config import tiny
from repro.experiments.drift_detection import (
    render_drift_detection,
    run_drift_detection,
)
from repro.obs.quality import accuracy_table

TINY = tiny(seed=7)


@pytest.fixture(scope="module")
def result():
    return run_drift_detection(TINY)


class TestDetection:
    def test_event_raised_after_shift(self, result):
        assert result.events, "no DriftEvent raised for the scripted shift"
        assert result.detection_latency_rounds is not None
        assert 0 <= result.detection_latency_rounds <= 6

    def test_no_events_during_baseline(self, result):
        shifted = result.shift_round
        for r in result.rounds:
            if r.index < shifted:
                assert not r.events

    def test_only_the_drifting_site_is_flagged(self, result):
        assert {e.site for e in result.events} == {result.drift_site}

    def test_probe_escape_is_the_leading_rule(self, result):
        # The probing-cost distribution leaves the partitioned range
        # before enough bad accuracy samples accumulate.
        assert result.events[0].rule == "probe_escape"


class TestPublication:
    def test_new_version_with_trigger_in_provenance(self, result):
        assert result.published, "drift raised no new registry version"
        for site, label, version, trigger in result.published:
            assert site == result.drift_site
            assert version >= 2
            assert trigger is not None and "drift[" in trigger

    def test_watched_class_rebuilt(self, result):
        labels = {label for _, label, _, _ in result.published}
        assert result.watched_class in labels

    def test_timeline_records_the_version_flip(self, result):
        versions = [r.active_version for r in result.rounds if r.phase != "stale"]
        assert versions[0] == 1
        assert versions[-1] >= 2
        assert versions == sorted(versions)


class TestRecovery:
    def test_baseline_and_recovery_are_good(self, result):
        assert result.baseline.count > 0
        assert result.baseline.pct_good >= 75.0
        assert result.recovered.count > 0
        assert result.recovered.pct_good >= 75.0

    def test_stale_counterfactual_degrades(self, result):
        assert result.stale.count > 0
        assert result.stale.pct_good <= 25.0
        assert result.recovered.pct_good > result.stale.pct_good + 50.0
        # The stale model was derived under calm contention: it
        # systematically underestimates the shifted regime.
        assert result.stale.bias < -0.3

    def test_stale_degradation_visible_in_accuracy_table(self, result):
        # After the stale phase the (reset) tracker holds only the
        # counterfactual windows — the rendered table shows the damage.
        from repro import obs

        table = accuracy_table(obs.get_tracker())
        row = next(
            line
            for line in table.splitlines()
            if line.lstrip().startswith(
                f"{result.drift_site}/{result.watched_class}/*"
            )
        )
        assert "0.0" in row  # good% column


class TestRendering:
    def test_render_carries_the_narrative(self, result):
        text = render_drift_detection(result)
        assert "baseline" in text and "recovery" in text and "stale" in text
        assert "drift detected" in text
        assert "published drift_site/" in text
        assert "trigger: drift[" in text
