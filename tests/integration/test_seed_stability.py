"""Seed stability: the headline result is not a lucky random universe.

Re-runs the central comparison (multi-states vs one-state on dynamic
data) across several independent seeds and requires the multi-states
model to win every time — the paper's conclusion should not hinge on any
particular random table content, load trace, or query sample.
"""

import pytest

from repro.core import CostModelBuilder, G1, validate_model
from repro.workload import make_site


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_multi_states_wins_across_seeds(seed):
    site = make_site(
        f"stability_{seed}", environment_kind="uniform", scale=0.008, seed=seed
    )
    builder = CostModelBuilder(site.database)
    train = builder.collect(site.generator.queries_for(G1, 110))
    test = builder.collect(site.generator.queries_for(G1, 40))

    multi = builder.build_from_observations(train, G1, "iupma").model
    one = builder.build_from_observations(train, G1, "static").model

    report_multi = validate_model(multi, test)
    report_one = validate_model(one, test)

    assert multi.num_states >= 2, f"seed {seed}: no states found"
    assert report_multi.r_squared > report_one.r_squared + 0.1, f"seed {seed}"
    assert report_multi.pct_good > report_one.pct_good, f"seed {seed}"
    assert multi.is_significant(alpha=0.01), f"seed {seed}"


def test_same_seed_is_fully_reproducible():
    """Two identical runs produce byte-identical models."""

    def run():
        site = make_site("repro_site", environment_kind="uniform", scale=0.008, seed=77)
        builder = CostModelBuilder(site.database)
        train = builder.collect(site.generator.queries_for(G1, 90))
        return builder.build_from_observations(train, G1, "iupma").model

    a = run()
    b = run()
    assert a.to_dict() == b.to_dict()
