"""Integration: the pipeline works for EVERY query class in the taxonomy.

The paper's §5 reports G1, G2, and G3; the classification of §4.1 covers
more access methods.  These tests push the full pipeline (generation →
sampling → state determination → selection → fit → validation) through
the remaining classes — clustered-index scans (GC), index nested-loop
joins (G4), and sort-merge joins (G5) — asserting the same qualitative
outcome: a significant multi-states model that beats its one-state twin.
"""

import pytest

from repro.core import CostModelBuilder, class_by_label, validate_model
from repro.workload import make_site

CLASS_CASES = [
    ("GC", 110, None),
    ("G4", 110, ("R1", "R2", "R3", "R4", "R5", "R6")),
    ("G5", 110, None),
]


@pytest.fixture(scope="module")
def coverage_site():
    return make_site("coverage_site", environment_kind="uniform", scale=0.01, seed=55)


@pytest.mark.parametrize("label,count,tables", CLASS_CASES)
def test_full_pipeline_for_class(coverage_site, label, count, tables):
    query_class = class_by_label(label)
    builder = CostModelBuilder(coverage_site.database)
    train = builder.collect(
        coverage_site.generator.queries_for(query_class, count, tables=tables)
    )
    test = builder.collect(
        coverage_site.generator.queries_for(query_class, 40, tables=tables)
    )

    multi = builder.build_from_observations(train, query_class, "iupma")
    one = builder.build_from_observations(train, query_class, "static")

    assert multi.model.class_label == label
    assert multi.model.num_states >= 2, f"{label}: no contention states found"
    assert multi.model.is_significant(alpha=0.01), f"{label}: F-test failed"

    report_multi = validate_model(multi.model, test)
    report_one = validate_model(one.model, test)
    assert report_multi.r_squared > report_one.r_squared, label
    assert report_multi.pct_good >= report_one.pct_good, label
    assert report_multi.pct_good > 50.0, label


def test_sampled_plans_match_class_method(coverage_site):
    """Every sampled query of each class actually executed with the
    class's access method (homogeneity of the sample)."""
    builder = CostModelBuilder(coverage_site.database)
    for label, count, tables in CLASS_CASES:
        query_class = class_by_label(label)
        queries = coverage_site.generator.queries_for(
            query_class, 6, tables=tables
        )
        observations = builder.collect(queries)
        plans = {obs.metadata["plan"] for obs in observations}
        assert plans == {query_class.access_method}, label
