"""Integration tests: the full pipeline, cross-checked end to end."""

import numpy as np
import pytest

from repro.core import (
    CostModelBuilder,
    G1,
    MultiStateCostModel,
    classify,
    extract_variables,
    split_train_test,
    validate_model,
)
from repro.engine import Comparison
from repro.mdbs import GlobalJoinQuery, MDBSAgent, MDBSServer
from repro.workload import make_site


class TestPipeline:
    def test_derived_model_beats_one_state_on_holdout(self, session_g1_build):
        builder, outcome = session_g1_build
        rng = np.random.default_rng(0)
        train, test = split_train_test(outcome.observations, 0.25, rng)
        multi = builder.build_from_observations(train, G1, "iupma").model
        one = builder.build_from_observations(train, G1, "static").model
        report_multi = validate_model(multi, test)
        report_one = validate_model(one, test)
        assert report_multi.pct_good > report_one.pct_good
        assert report_multi.r_squared > report_one.r_squared

    def test_model_survives_catalog_round_trip_and_predicts(self, session_g1_build):
        builder, outcome = session_g1_build
        model = MultiStateCostModel.from_dict(outcome.model.to_dict())
        obs = outcome.observations[0]
        assert model.predict(obs.values, obs.probing_cost) == pytest.approx(
            outcome.model.predict(obs.values, obs.probing_cost)
        )

    def test_estimates_usable_for_fresh_query(self, session_site, session_g1_build):
        builder, outcome = session_g1_build
        query = session_site.generator.queries_for(G1, 1)[0]
        assert classify(session_site.database, query) is G1
        probing = builder.probe.observe()
        result = session_site.database.execute(query)
        estimate = outcome.model.predict(extract_variables(result), probing)
        # Same order of magnitude as the observation.
        assert estimate > 0
        assert max(estimate / result.elapsed, result.elapsed / estimate) < 10


class TestGlobalFlow:
    def test_models_drive_global_optimization(self):
        """Build a 2-site MDBS from scratch and execute a global join."""
        left = make_site("site_a", environment_kind="uniform", scale=0.008, seed=71)
        right = make_site("site_b", environment_kind="uniform", scale=0.008, seed=72)
        server = MDBSServer()
        for site in (left, right):
            server.register_agent(MDBSAgent(site.database))
            builder = CostModelBuilder(site.database)
            from repro.core import G3

            for qc, n in ((G1, 70), (G3, 80)):
                queries = site.generator.queries_for(qc, n, tables=["R1", "R2", "R3"])
                server.store_cost_model(
                    site.name, builder.build(qc, queries).model
                )
        query = GlobalJoinQuery(
            "site_a",
            "R2",
            "site_b",
            "R3",
            "a4",
            "a4",
            ("R2.a1", "R3.a5"),
            left_predicate=Comparison("a3", "<", 700),
        )
        execution = server.execute(query)
        # Observed and estimated agree to within an order of magnitude,
        # and the result itself is a genuine cross-site join.
        ratio = max(
            execution.observed_seconds / max(execution.estimated_seconds, 1e-9),
            execution.estimated_seconds / max(execution.observed_seconds, 1e-9),
        )
        assert ratio < 10
        t2 = left.database.catalog.table("R2")
        t3 = right.database.catalog.table("R3")
        a4_left = t2.schema.position("a4")
        a3_left = t2.schema.position("a3")
        keys_left = {r[a4_left] for r in t2 if r[a3_left] < 700}
        keys_right = {r[t3.schema.position("a4")] for r in t3}
        assert execution.cardinality > 0
        assert len(keys_left & keys_right) > 0
