"""The full MDBS loop under shifting contention.

Derives per-site models through the server's lifecycle wiring
(``register_model_class``), then steps the load builders across two
contention levels and checks that

* ``optimize()`` + ``execute()`` estimates stay within a 2x band of the
  observed cost at *both* levels, and
* the contention state the optimizer resolves actually tracks the load.
"""

import pytest

from repro.core import G1, G3
from repro.engine import Comparison
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.mdbs import GlobalJoinQuery, MDBSAgent, MDBSServer
from repro.workload import make_site

TABLES = ["R1", "R2", "R3", "R4"]
# Mid-range contention levels: the models were derived under a uniform
# 0..1 load, so the band edges (where the fit extrapolates) are avoided.
LOW, HIGH = 0.3, 0.8


@pytest.fixture(scope="module")
def loop_mdbs():
    server = MDBSServer()
    sites = {}
    for name, profile, seed in (("alpha", ORACLE_LIKE, 81), ("beta", DB2_LIKE, 82)):
        site = make_site(
            name, profile=profile, environment_kind="uniform", scale=0.01, seed=seed
        )
        sites[name] = site
        server.register_agent(MDBSAgent(site.database))
        server.configure_maintenance(name)
        for query_class, count in ((G1, 80), (G3, 100)):
            server.register_model_class(
                name,
                query_class,
                lambda n, s=site, qc=query_class: s.generator.queries_for(
                    qc, n, tables=TABLES
                ),
                sample_count=count,
            )
    return server, sites


@pytest.fixture
def globalq():
    return GlobalJoinQuery(
        "alpha",
        "R2",
        "beta",
        "R3",
        "a4",
        "a4",
        ("R2.a1", "R3.a2"),
        left_predicate=Comparison("a3", "<", 500),
        right_predicate=Comparison("a7", ">", 25000),
    )


def run_at(server, sites, query, level):
    for site in sites.values():
        site.load_builder.constant(level)
    plan = server.optimize(query)
    execution = server.execute(query, plan)
    return plan, execution


def select_states(plan):
    return [e.state for e in plan.estimates if e.class_label == "G1"]


class TestShiftingContention:
    def test_estimates_track_observed_across_load_levels(self, loop_mdbs, globalq):
        server, sites = loop_mdbs
        for level in (LOW, HIGH):
            plan, execution = run_at(server, sites, globalq, level)
            estimated = execution.estimated_seconds
            observed = execution.observed_seconds
            ratio = max(
                estimated / max(observed, 1e-9), observed / max(estimated, 1e-9)
            )
            assert ratio <= 2.0, (
                f"level={level}: estimated {estimated:.3f}s vs observed "
                f"{observed:.3f}s (ratio {ratio:.2f})"
            )
            assert execution.cardinality > 0

    def test_resolved_state_follows_load(self, loop_mdbs, globalq):
        server, sites = loop_mdbs
        low_plan, _ = run_at(server, sites, globalq, LOW)
        high_plan, _ = run_at(server, sites, globalq, HIGH)
        low_states = select_states(low_plan)
        high_states = select_states(high_plan)
        assert all(h >= lo for h, lo in zip(high_states, low_states))
        assert sum(high_states) > sum(low_states)
