"""Shared fixtures for the test suite.

Expensive artifacts (populated sites, collected observation sets, fitted
models) are session-scoped: many tests read them, none mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostModelBuilder, G1
from repro.engine import Column, DataType, LocalDatabase, Table, TableSchema
from repro.env import dynamic_uniform_environment
from repro.workload import make_site, small_workload


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_test_table(
    name: str = "t", rows: int = 500, seed: int = 0, extra_str: bool = False
) -> Table:
    """A small table with three int columns (and optionally a string)."""
    columns = [
        Column("a", DataType.INT),
        Column("b", DataType.INT),
        Column("c", DataType.INT),
    ]
    if extra_str:
        columns.append(Column("s", DataType.STR, 16))
    schema = TableSchema(name, columns)
    table = Table(schema)
    gen = np.random.default_rng(seed)
    for _ in range(rows):
        row = [
            int(gen.integers(0, 1000)),
            int(gen.integers(0, 100)),
            int(gen.integers(0, 10)),
        ]
        if extra_str:
            row.append("x" * int(gen.integers(1, 8)))
        table.insert(row)
    table.analyze()
    return table


@pytest.fixture
def small_table() -> Table:
    return make_test_table()


@pytest.fixture
def small_database() -> LocalDatabase:
    """A two-table database with indexes, in a static environment."""
    db = LocalDatabase("unit_db", noise_sigma=0.0, seed=1)
    gen = np.random.default_rng(3)
    columns = [
        Column("a", DataType.INT),
        Column("b", DataType.INT),
        Column("c", DataType.INT),
    ]
    db.create_table(
        "t1",
        columns,
        [
            (int(gen.integers(0, 1000)), int(gen.integers(0, 100)), int(gen.integers(0, 10)))
            for _ in range(600)
        ],
    )
    db.create_table(
        "t2",
        columns,
        [
            (int(gen.integers(0, 1000)), int(gen.integers(0, 100)), int(gen.integers(0, 10)))
            for _ in range(400)
        ],
    )
    db.create_index("t1_a", "t1", "a")
    db.create_index("t2_b_c", "t2", "b", clustered=True)
    db.analyze()
    return db


@pytest.fixture
def dynamic_database() -> LocalDatabase:
    """A small database under uniformly dynamic contention."""
    db = LocalDatabase(
        "dyn_db", environment=dynamic_uniform_environment(seed=5), seed=5
    )
    gen = np.random.default_rng(7)
    db.create_table(
        "t1",
        [Column("a", DataType.INT), Column("b", DataType.INT)],
        [(int(gen.integers(0, 1000)), int(gen.integers(0, 100))) for _ in range(400)],
    )
    db.analyze()
    return db


@pytest.fixture(scope="session")
def session_site():
    """A populated dynamic site shared by read-only pipeline tests."""
    return make_site("session_site", environment_kind="uniform", scale=0.01, seed=99)


@pytest.fixture(scope="session")
def session_g1_build(session_site):
    """A derived G1 model + observations, shared across tests."""
    builder = CostModelBuilder(session_site.database)
    queries = session_site.generator.queries_for(G1, 120)
    outcome = builder.build(G1, queries, algorithm="iupma")
    return builder, outcome


@pytest.fixture
def tiny_workload():
    return small_workload(num_tables=3, base_rows=400, seed=2)
