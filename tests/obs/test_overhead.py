"""Guard: disabled (no-op) instrumentation is ~free on engine hot paths."""

import time

from repro import obs


def best_of(runs, fn):
    """Minimum per-iteration time over several runs (noise-robust)."""
    best = float("inf")
    for _ in range(runs):
        best = min(best, fn())
    return best


class TestNoopOverhead:
    def test_disabled_tracer_under_5pct_of_tight_engine_loop(self, small_database):
        """The no-op span machinery must cost < 5% of one engine query.

        ``LocalDatabase.execute`` contains a single span call site (plus
        always-on counter updates that exist regardless of tracing), so
        the disabled-tracer overhead per query is one no-op ``with``
        block.  We budget for 3 of them: headroom for denser future
        instrumentation without making the bound so tight that scheduler
        noise under a full-suite run can trip it.
        """
        assert not obs.enabled()
        query = small_database.parse("select a from t1 where a < 100")
        for _ in range(10):  # warmup
            small_database.execute(query)

        def time_engine():
            n = 60
            started = time.perf_counter()
            for _ in range(n):
                small_database.execute(query)
            return (time.perf_counter() - started) / n

        def time_noop_span():
            n = 20_000
            started = time.perf_counter()
            for _ in range(n):
                with obs.span("overhead-probe"):
                    pass
            return (time.perf_counter() - started) / n

        engine_seconds = best_of(3, time_engine)
        noop_seconds = best_of(3, time_noop_span)
        assert noop_seconds * 3 < 0.05 * engine_seconds, (
            f"no-op span costs {noop_seconds * 1e6:.2f}us; tight engine loop "
            f"iteration is {engine_seconds * 1e6:.1f}us — budget exceeded"
        )

    def test_noop_span_allocates_nothing_new(self):
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is second  # the shared singleton


class TestAccuracyTrackingOverhead:
    def test_recording_under_5pct_of_plan_execution_floor(self, small_database):
        """Per-plan accuracy recording must cost < 5% of plan execution.

        ``MDBSServer.execute`` records one accuracy sample per plan step
        that carries a class label — at most 3 for a binary join plan
        (the ship step has none) — plus one plan-level histogram
        observation.  The executed plan itself runs 4 engine steps, each
        at least as expensive as the cheapest possible local select (two
        of them *are* selects; the ship and join cost strictly more), so
        4x the tight-loop query time is a hard lower bound on the work
        the recording rides along with.
        """
        from repro.obs.quality import AccuracyTracker

        query = small_database.parse("select a from t1 where a < 100")
        for _ in range(10):  # warmup
            small_database.execute(query)

        def time_engine():
            n = 60
            started = time.perf_counter()
            for _ in range(n):
                small_database.execute(query)
            return (time.perf_counter() - started) / n

        tracker = AccuracyTracker(export=False)

        def time_record():
            n = 20_000
            started = time.perf_counter()
            for i in range(n):
                tracker.record(
                    "site", "G1", i % 3, predicted=1.0, actual=1.1, at_time=float(i)
                )
            return (time.perf_counter() - started) / n

        def time_observe():
            n = 20_000
            registry = obs.MetricsRegistry()
            started = time.perf_counter()
            for _ in range(n):
                registry.observe("mdbs.plan.rel_error", 0.1)
            return (time.perf_counter() - started) / n

        engine_seconds = best_of(3, time_engine)
        per_plan = 3 * best_of(3, time_record) + best_of(3, time_observe)
        floor = 4 * engine_seconds
        assert per_plan < 0.05 * floor, (
            f"per-plan accuracy recording costs {per_plan * 1e6:.2f}us; the "
            f"plan-execution floor is {floor * 1e6:.1f}us — budget exceeded"
        )
