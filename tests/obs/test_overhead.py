"""Guard: disabled (no-op) instrumentation is ~free on engine hot paths."""

import time

from repro import obs


def best_of(runs, fn):
    """Minimum per-iteration time over several runs (noise-robust)."""
    best = float("inf")
    for _ in range(runs):
        best = min(best, fn())
    return best


class TestNoopOverhead:
    def test_disabled_tracer_under_5pct_of_tight_engine_loop(self, small_database):
        """The no-op span machinery must cost < 5% of one engine query.

        ``LocalDatabase.execute`` contains a single span call site (plus
        always-on counter updates that exist regardless of tracing), so
        the disabled-tracer overhead per query is one no-op ``with``
        block.  We budget for 3 of them: headroom for denser future
        instrumentation without making the bound so tight that scheduler
        noise under a full-suite run can trip it.
        """
        assert not obs.enabled()
        query = small_database.parse("select a from t1 where a < 100")
        for _ in range(10):  # warmup
            small_database.execute(query)

        def time_engine():
            n = 60
            started = time.perf_counter()
            for _ in range(n):
                small_database.execute(query)
            return (time.perf_counter() - started) / n

        def time_noop_span():
            n = 20_000
            started = time.perf_counter()
            for _ in range(n):
                with obs.span("overhead-probe"):
                    pass
            return (time.perf_counter() - started) / n

        engine_seconds = best_of(3, time_engine)
        noop_seconds = best_of(3, time_noop_span)
        assert noop_seconds * 3 < 0.05 * engine_seconds, (
            f"no-op span costs {noop_seconds * 1e6:.2f}us; tight engine loop "
            f"iteration is {engine_seconds * 1e6:.1f}us — budget exceeded"
        )

    def test_noop_span_allocates_nothing_new(self):
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is second  # the shared singleton
