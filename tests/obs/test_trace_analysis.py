"""Cross-process trace analytics: stage attribution, rankings, CLI.

All inputs are hand-built span dicts in the ``span_to_dict`` shape, so
every expected number is exact — no real serving run, no wall clock.
"""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.trace_analysis import (
    STAGES,
    group_traces,
    load_trace_file,
    render_slowest_table,
    render_stage_breakdown,
    render_trace_report,
    render_trace_tree,
    slowest_traces,
    trace_root,
    trace_stage_seconds,
    trace_tree_lines,
)


def _span(
    name,
    span_id,
    parent_id=None,
    trace_id="t-1",
    start=0.0,
    duration=1.0,
    **attributes,
):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "start": start,
        "end": start + duration,
        "duration": duration,
        "thread": "main",
        "attributes": attributes,
    }


def request_trace(trace_id="t-1", base_id=0, root_duration=10.0, slow=0.0):
    """One request's spans: root > queue/plan/execute, probes nested.

    The plan stage hides a coalesced probe wait, the execute stage a real
    probe execution — exactly the attribution subtlety the breakdown has
    to get right.
    """
    b = base_id
    return [
        _span(
            "serving.request",
            b + 1,
            trace_id=trace_id,
            duration=root_duration + slow,
            status="completed",
            query="q",
        ),
        _span("serving.queue", b + 2, b + 1, trace_id, start=0.0, duration=2.0),
        _span(
            "serving.plan",
            b + 3,
            b + 1,
            trace_id,
            start=2.0,
            duration=3.0 + slow,
        ),
        _span(
            "mdbs.probe.service",
            b + 4,
            b + 3,
            trace_id,
            start=2.5,
            duration=1.0,
            outcome="coalesced",
        ),
        _span("serving.execute", b + 5, b + 1, trace_id, start=5.0, duration=4.0),
        _span(
            "mdbs.probe.service",
            b + 6,
            b + 5,
            trace_id,
            start=5.5,
            duration=0.5,
            outcome="executed",
        ),
        # Nested under the outer probe span: must NOT be double-counted.
        _span(
            "mdbs.probe",
            b + 7,
            b + 6,
            trace_id,
            start=5.6,
            duration=0.4,
            outcome="executed",
        ),
    ]


class TestStageAttribution:
    def test_probe_time_moves_out_of_its_enclosing_stage(self):
        totals = trace_stage_seconds(request_trace())
        assert totals["queue"] == pytest.approx(2.0)
        # plan held a 1.0s coalesced wait: 3.0 raw - 1.0 probe_wait.
        assert totals["plan"] == pytest.approx(2.0)
        assert totals["probe_wait"] == pytest.approx(1.0)
        # execute held a 0.5s probe execution (outermost span only).
        assert totals["execute"] == pytest.approx(3.5)
        assert totals["probe"] == pytest.approx(0.5)
        # root 10.0 - (queue 2.0 + raw plan 3.0 + raw execute 4.0).
        assert totals["other"] == pytest.approx(1.0)
        assert sum(totals.values()) == pytest.approx(10.0)

    def test_nested_probe_spans_count_once(self):
        totals = trace_stage_seconds(request_trace())
        # The inner mdbs.probe (0.4s) is swallowed by its parent span.
        assert totals["probe"] == pytest.approx(0.5)

    def test_breakdown_sums_over_traces(self):
        groups = group_traces(
            request_trace("t-1", 0) + request_trace("t-2", 100)
        )
        rendered = render_stage_breakdown(groups)
        assert set(STAGES) <= {
            line.split()[0] for line in rendered.splitlines()[2:]
        }
        queue_row = next(
            line for line in rendered.splitlines() if line.startswith("queue")
        )
        assert "4.000000" in queue_row  # 2.0s per trace, two traces


class TestSlowest:
    def test_ranked_by_root_duration_then_trace_id(self):
        spans = (
            request_trace("t-b", 0, root_duration=10.0)
            + request_trace("t-a", 100, root_duration=10.0)
            + request_trace("t-slow", 200, root_duration=10.0, slow=5.0)
        )
        ranked = slowest_traces(group_traces(spans), n=3)
        # Slowest first; equal durations break ties on trace id.
        assert [trace_id for trace_id, _ in ranked] == ["t-slow", "t-a", "t-b"]

    def test_table_carries_spans_status_query(self):
        table = render_slowest_table(group_traces(request_trace()), n=5)
        row = table.splitlines()[2]
        assert row.startswith("t-1")
        assert " 7 " in row  # span count
        assert "completed" in row

    def test_empty_input(self):
        assert render_slowest_table({}, n=5) == "(no traces)"


class TestTreeRendering:
    def test_indentation_follows_parentage(self):
        lines = trace_tree_lines(request_trace())
        assert lines[0].startswith("serving.request")
        assert lines[1].startswith("  serving.queue")
        probe_lines = [l for l in lines if "mdbs.probe.service" in l]
        assert all(l.startswith("    mdbs.probe.service") for l in probe_lines)
        assert any(l.startswith("      mdbs.probe ") for l in lines)

    def test_attributes_render_sorted(self):
        (line,) = trace_tree_lines(
            [_span("s", 1, zebra=1, alpha=2, duration=0.5)]
        )
        assert "[alpha=2 zebra=1]" in line

    def test_missing_trace(self):
        assert "not found" in render_trace_tree({}, "t-missing")

    def test_root_prefers_the_named_request_span(self):
        spans = request_trace()
        assert trace_root(spans)["name"] == "serving.request"
        # Without the named root, the earliest orphan wins.
        headless = [s for s in spans if s["name"] != "serving.request"]
        assert trace_root(headless)["name"] == "serving.queue"


class TestCli:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        spans = request_trace("t-1", 0) + request_trace(
            "t-2", 100, slow=3.0
        )
        path.write_text(
            "".join(json.dumps(span) + "\n" for span in spans),
            encoding="utf-8",
        )
        return path

    def test_load_skips_blank_lines(self, trace_file):
        raw = trace_file.read_text()
        trace_file.write_text("\n" + raw + "\n\n")
        assert len(load_trace_file(trace_file)) == 14

    def test_report_contains_all_sections(self, trace_file):
        report = render_trace_report(load_trace_file(trace_file), slowest=5)
        assert "traces: 2" in report
        assert "critical path" in report
        assert "Slowest 5 traces" in report
        # Default tree expansion: the slowest trace.
        assert "trace t-2" in report

    def test_trace_subcommand_end_to_end(self, trace_file, capsys):
        assert obs_main(["trace", str(trace_file), "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert "Slowest 2 traces" in out
        assert "serving.request" in out

    def test_tree_flag_picks_the_trace(self, trace_file, capsys):
        assert obs_main(["trace", str(trace_file), "--tree", "t-1"]) == 0
        assert "trace t-1" in capsys.readouterr().out

    def test_bad_slowest_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            obs_main(["trace", str(trace_file), "--slowest", "0"])
