"""Unit tests for the span tracer: nesting, attributes, thread-safety."""

import threading

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, NoopTracer, Tracer


class TestNoopDefault:
    def test_default_tracer_is_disabled(self):
        assert isinstance(obs.get_tracer(), NoopTracer)
        assert not obs.enabled()

    def test_span_is_shared_noop_singleton(self):
        with obs.span("anything", key="value") as sp:
            assert sp is NOOP_SPAN
            assert not sp.recording
            sp.set_attribute("x", 1)  # silently ignored
            sp.set_attributes(y=2)
        assert obs.get_tracer().finished() == []

    def test_noop_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with obs.span("x"):
                raise RuntimeError("boom")


class TestEnableDisable:
    def test_enable_installs_recording_tracer(self):
        try:
            tracer = obs.enable()
            assert obs.get_tracer() is tracer
            assert obs.enabled()
            with obs.span("unit"):
                pass
            assert [s.name for s in tracer.finished()] == ["unit"]
        finally:
            obs.disable()
        assert not obs.enabled()

    def test_recording_restores_previous_tracer(self):
        before = obs.get_tracer()
        with obs.recording() as tracer:
            assert obs.get_tracer() is tracer
        assert obs.get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:
            assert obs.get_tracer() is tracer
        finally:
            obs.set_tracer(previous)


class TestSpanRecording:
    def test_nested_parentage(self, tracer):
        with obs.span("root") as root:
            with obs.span("child") as child:
                with obs.span("grandchild") as grand:
                    pass
            with obs.span("sibling") as sibling:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        # Finish order is innermost-first.
        assert [s.name for s in tracer.finished()] == [
            "grandchild",
            "child",
            "sibling",
            "root",
        ]

    def test_attributes_at_creation_and_later(self, tracer):
        with obs.span("s", site="A") as sp:
            assert sp.recording
            sp.set_attribute("rows", 10)
            sp.set_attributes(plan="seq_scan", pages=3)
        (span,) = tracer.finished()
        assert span.attributes == {
            "site": "A",
            "rows": 10,
            "plan": "seq_scan",
            "pages": 3,
        }

    def test_duration_is_positive_after_exit(self, tracer):
        with obs.span("s") as sp:
            assert sp.duration == 0.0  # still open
        assert sp.end is not None
        assert sp.end >= sp.start
        assert sp.duration >= 0.0

    def test_exception_marks_span_and_still_finishes(self, tracer):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None
        # The stack is clean: a new span is a root, not a child.
        with obs.span("after") as after:
            pass
        assert after.parent_id is None

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current() is None
        with obs.span("outer") as outer:
            assert tracer.current() is outer
            with obs.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_reset_drops_finished_spans(self, tracer):
        with obs.span("s"):
            pass
        tracer.reset()
        assert tracer.finished() == []

    def test_span_ids_are_unique(self, tracer):
        for _ in range(50):
            with obs.span("s"):
                pass
        ids = [s.span_id for s in tracer.finished()]
        assert len(set(ids)) == len(ids)


class TestThreadSafety:
    def test_parentage_never_crosses_threads(self, tracer):
        n_threads, per_thread = 6, 40
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(per_thread):
                with obs.span(f"root-{tid}"):
                    with obs.span(f"child-{tid}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        spans = tracer.finished()
        assert len(spans) == n_threads * per_thread * 2
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            tid = span.name.split("-")[1]
            if span.name.startswith("root-"):
                assert span.parent_id is None
            else:
                parent = by_id[span.parent_id]
                # A child's parent was opened by the same thread.
                assert parent.name == f"root-{tid}"
                assert parent.thread == span.thread
