"""Unit tests for the span tracer: nesting, attributes, thread-safety."""

import threading

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, NoopTracer, Tracer


class TestNoopDefault:
    def test_default_tracer_is_disabled(self):
        assert isinstance(obs.get_tracer(), NoopTracer)
        assert not obs.enabled()

    def test_span_is_shared_noop_singleton(self):
        with obs.span("anything", key="value") as sp:
            assert sp is NOOP_SPAN
            assert not sp.recording
            sp.set_attribute("x", 1)  # silently ignored
            sp.set_attributes(y=2)
        assert obs.get_tracer().finished() == []

    def test_noop_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with obs.span("x"):
                raise RuntimeError("boom")


class TestEnableDisable:
    def test_enable_installs_recording_tracer(self):
        try:
            tracer = obs.enable()
            assert obs.get_tracer() is tracer
            assert obs.enabled()
            with obs.span("unit"):
                pass
            assert [s.name for s in tracer.finished()] == ["unit"]
        finally:
            obs.disable()
        assert not obs.enabled()

    def test_recording_restores_previous_tracer(self):
        before = obs.get_tracer()
        with obs.recording() as tracer:
            assert obs.get_tracer() is tracer
        assert obs.get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:
            assert obs.get_tracer() is tracer
        finally:
            obs.set_tracer(previous)


class TestSpanRecording:
    def test_nested_parentage(self, tracer):
        with obs.span("root") as root:
            with obs.span("child") as child:
                with obs.span("grandchild") as grand:
                    pass
            with obs.span("sibling") as sibling:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        # Finish order is innermost-first.
        assert [s.name for s in tracer.finished()] == [
            "grandchild",
            "child",
            "sibling",
            "root",
        ]

    def test_attributes_at_creation_and_later(self, tracer):
        with obs.span("s", site="A") as sp:
            assert sp.recording
            sp.set_attribute("rows", 10)
            sp.set_attributes(plan="seq_scan", pages=3)
        (span,) = tracer.finished()
        assert span.attributes == {
            "site": "A",
            "rows": 10,
            "plan": "seq_scan",
            "pages": 3,
        }

    def test_duration_is_positive_after_exit(self, tracer):
        with obs.span("s") as sp:
            assert sp.duration == 0.0  # still open
        assert sp.end is not None
        assert sp.end >= sp.start
        assert sp.duration >= 0.0

    def test_exception_marks_span_and_still_finishes(self, tracer):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None
        # The stack is clean: a new span is a root, not a child.
        with obs.span("after") as after:
            pass
        assert after.parent_id is None

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current() is None
        with obs.span("outer") as outer:
            assert tracer.current() is outer
            with obs.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_reset_drops_finished_spans(self, tracer):
        with obs.span("s"):
            pass
        tracer.reset()
        assert tracer.finished() == []

    def test_span_ids_are_unique(self, tracer):
        for _ in range(50):
            with obs.span("s"):
                pass
        ids = [s.span_id for s in tracer.finished()]
        assert len(set(ids)) == len(ids)


class TestRequestScopedSpans:
    def test_detached_root_survives_a_thread_hop(self, tracer):
        """The serving shape: a root entered on the submitting thread is
        exited by a worker, whose own spans anchor via TraceContext."""
        root = tracer.span("serving.request", trace_id="t-1", detached=True)
        root.__enter__()
        done = threading.Event()

        def worker():
            with tracer.span("serving.plan", parent=root.context):
                with obs.span("nested"):  # stack inheritance inside worker
                    pass
            root.__exit__(None, None, None)
            done.set()

        threading.Thread(target=worker).start()
        assert done.wait(5.0)
        spans = {s.name: s for s in tracer.finished()}
        assert set(spans) == {"serving.request", "serving.plan", "nested"}
        assert all(s.trace_id == "t-1" for s in spans.values())
        assert spans["serving.plan"].parent_id == spans["serving.request"].span_id
        assert spans["nested"].parent_id == spans["serving.plan"].span_id

    def test_detached_span_stays_off_the_thread_stack(self, tracer):
        with tracer.span("root", trace_id="t-2", detached=True):
            with obs.span("unrelated") as other:
                pass
        # The detached span never became the stack parent.
        assert other.parent_id is None
        assert other.trace_id is None

    def test_trace_id_inherited_from_innermost_open_span(self, tracer):
        with tracer.span("root", trace_id="t-3"):
            with obs.span("child") as child:
                pass
        assert child.trace_id == "t-3"

    def test_explicit_trace_id_starts_an_anchored_root(self, tracer):
        with obs.span("outer"):
            with tracer.span("root", trace_id="t-4") as inner:
                pass
        assert inner.parent_id is None  # not re-parented under "outer"
        assert inner.trace_id == "t-4"

    def test_active_trace_id_tracks_the_open_span(self, tracer):
        assert obs.current_trace_id() is None
        with tracer.span("root", trace_id="t-5"):
            assert obs.current_trace_id() == "t-5"
        assert obs.current_trace_id() is None


class TestSuppression:
    def test_suppress_silences_spans_and_records_nothing(self, tracer):
        with tracer.suppress():
            with obs.span("invisible") as sp:
                pass
        assert sp is obs.NOOP_SPAN
        assert tracer.finished() == []

    def test_suppress_carries_the_trace_id_for_exemplar_links(self, tracer):
        with tracer.suppress("t-unsampled"):
            assert obs.current_trace_id() == "t-unsampled"
        assert obs.current_trace_id() is None

    def test_suppress_begin_end_token_restores_outer_state(self, tracer):
        outer = tracer.suppress_begin("outer-id")
        inner = tracer.suppress_begin("inner-id")
        assert tracer.active_trace_id() == "inner-id"
        tracer.suppress_end(inner)
        assert tracer.active_trace_id() == "outer-id"
        tracer.suppress_end(outer)
        assert tracer.active_trace_id() is None
        with obs.span("after") as sp:
            assert sp.recording  # suppression fully unwound

    def test_noop_tracer_suppression_is_harmless(self):
        noop = NoopTracer()
        token = noop.suppress_begin("anything")
        noop.suppress_end(token)
        with noop.suppress():
            assert noop.active_trace_id() is None


class TestTraceBookkeeping:
    def _record_trace(self, tracer, trace_id, spans=3):
        with tracer.span("root", trace_id=trace_id):
            for i in range(spans - 1):
                with obs.span(f"child-{i}"):
                    pass

    def test_span_count_is_per_trace(self, tracer):
        self._record_trace(tracer, "t-a", spans=3)
        self._record_trace(tracer, "t-b", spans=2)
        assert tracer.span_count("t-a") == 3
        assert tracer.span_count("t-b") == 2
        assert tracer.span_count("t-missing") == 0

    def test_drop_trace_removes_only_that_trace(self, tracer):
        self._record_trace(tracer, "t-a")
        self._record_trace(tracer, "t-b")
        assert tracer.drop_trace("t-a") == 1
        assert tracer.drop_trace("t-a") == 0  # idempotent
        assert tracer.span_count("t-a") == 0
        assert tracer.trace("t-a") == []
        assert {s.trace_id for s in tracer.finished()} == {"t-b"}

    def test_lazy_drops_survive_compaction(self, tracer):
        keep_id = "t-keep"
        self._record_trace(tracer, keep_id, spans=2)
        for i in range(Tracer.DROP_COMPACT_THRESHOLD + 5):
            self._record_trace(tracer, f"t-drop-{i}", spans=1)
            tracer.drop_trace(f"t-drop-{i}")
        assert [s.trace_id for s in tracer.finished()] == [keep_id, keep_id]
        assert tracer.span_count(keep_id) == 2

    def test_local_ids_restart_per_tracer(self):
        def ids():
            t = Tracer(local_ids=True)
            with t.span("a", trace_id="x"):
                with t.span("b", parent=t.current()):
                    pass
            return [s.span_id for s in t.finished()]

        assert ids() == ids()


class TestTraceSampler:
    def test_verdict_is_a_pure_function_of_seed_and_id(self):
        from repro.obs.tracing import TraceSampler

        ids = [f"s000-q{i:06d}" for i in range(256)]
        first = {i for i in ids if TraceSampler(rate=0.25, seed=7).keep(i)}
        second = {i for i in ids if TraceSampler(rate=0.25, seed=7).keep(i)}
        assert first == second
        assert 0 < len(first) < len(ids)
        # A different seed samples a different subset.
        other = {i for i in ids if TraceSampler(rate=0.25, seed=8).keep(i)}
        assert other != first

    def test_rate_edges_and_validation(self):
        from repro.obs.tracing import TraceSampler

        assert TraceSampler(rate=1.0).keep("anything")
        assert not TraceSampler(rate=0.0).keep("anything")
        with pytest.raises(ValueError):
            TraceSampler(rate=1.5)

    def test_resolve_keeps_or_drops_and_counts(self, tracer, fresh_registry):
        from repro.obs.tracing import TraceSampler

        sampler = TraceSampler(rate=0.0, seed=1)
        with tracer.span("root", trace_id="t-gone"):
            pass
        assert not sampler.resolve(tracer, "t-gone")
        assert tracer.trace("t-gone") == []
        assert sampler.dropped == 1 and sampler.sampled == 0
        assert fresh_registry.counter_value("obs.trace.dropped") == 1.0

        with tracer.span("root", trace_id="t-forced"):
            pass
        assert sampler.resolve(tracer, "t-forced", force=True)
        assert len(tracer.trace("t-forced")) == 1
        assert sampler.sampled == 1 and sampler.forced == 1
        assert fresh_registry.counter_value("obs.trace.sampled") == 1.0

    def test_resolve_rebinds_metrics_after_registry_swap(self, tracer):
        from repro.obs.tracing import TraceSampler

        sampler = TraceSampler(rate=1.0)
        for registry in (obs.MetricsRegistry(), obs.MetricsRegistry()):
            previous = obs.set_registry(registry)
            try:
                sampler.resolve(tracer, "t-x")
                assert registry.counter_value("obs.trace.sampled") == 1.0
            finally:
                obs.set_registry(previous)


class TestThreadSafety:
    def test_parentage_never_crosses_threads(self, tracer):
        n_threads, per_thread = 6, 40
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(per_thread):
                with obs.span(f"root-{tid}"):
                    with obs.span(f"child-{tid}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        spans = tracer.finished()
        assert len(spans) == n_threads * per_thread * 2
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            tid = span.name.split("-")[1]
            if span.name.startswith("root-"):
                assert span.parent_id is None
            else:
                parent = by_id[span.parent_id]
                # A child's parent was opened by the same thread.
                assert parent.name == f"root-{tid}"
                assert parent.thread == span.thread
