"""Integration: the engine / builder / maintenance layers feed repro.obs.

(The MDBS server's per-step trace is covered in tests/mdbs/test_server.py,
where a populated two-site system is available.)
"""

import json

import pytest

from repro import obs
from repro.core import CostModelBuilder, G1, derivation_report
from repro.core.maintenance import ModelMaintainer
from repro.workload import make_site


@pytest.fixture(scope="module")
def obs_site():
    return make_site("obs_site", environment_kind="uniform", scale=0.008, seed=21)


class TestEngineInstrumentation:
    def test_execute_records_counters_and_histograms(
        self, small_database, fresh_registry
    ):
        result = small_database.execute("select a, b from t1 where a < 500")
        snap = fresh_registry.snapshot()
        assert snap["engine.queries"]["value"] == 1.0
        pages = (
            snap["engine.pages.sequential"]["value"]
            + snap["engine.pages.random"]["value"]
        )
        assert pages == result.metrics.total_page_reads
        assert snap["engine.cpu_ops"]["value"] > 0
        # Per-access-method simulated seconds, and the costing breakdown.
        assert snap[f"engine.elapsed_seconds.{result.plan}"]["count"] == 1
        assert snap["engine.costing.io_seconds"]["count"] == 1
        assert snap["engine.costing.cpu_seconds"]["count"] == 1
        assert snap["engine.costing.last_slowdown"]["value"] >= 1.0

    def test_execute_span_attributes(self, small_database, tracer):
        result = small_database.execute("select a from t1 where a < 100")
        spans = [s for s in tracer.finished() if s.name == "engine.execute"]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["database"] == "unit_db"
        assert attrs["plan"] == result.plan
        assert attrs["rows"] == result.cardinality
        assert attrs["simulated_seconds"] == pytest.approx(result.elapsed)


class TestBuilderInstrumentation:
    @pytest.fixture(scope="class")
    def traced_build(self, obs_site):
        builder = CostModelBuilder(obs_site.database)
        queries = obs_site.generator.queries_for(G1, 60)
        with obs.recording() as tracer:
            outcome = builder.build(G1, queries, algorithm="iupma")
        return tracer, outcome

    def test_phase_timings_surfaced_in_outcome(self, traced_build):
        _, outcome = traced_build
        assert list(outcome.timings) == [
            "sampling",
            "partitioning",
            "variable_selection",
            "fitting",
        ]
        assert all(seconds >= 0.0 for seconds in outcome.timings.values())
        # Sampling runs real queries; it cannot take literally zero time.
        assert outcome.timings["sampling"] > 0.0

    def test_build_produces_wellformed_nested_trace(self, traced_build):
        tracer, _ = traced_build
        spans = tracer.finished()
        by_id = {s.span_id: s for s in spans}
        names = {s.name for s in spans}
        assert {
            "build",
            "build.sampling",
            "build.derive",
            "build.partitioning",
            "build.variable_selection",
            "build.fitting",
        } <= names
        (root,) = [s for s in spans if s.name == "build"]
        assert root.parent_id is None
        for name in ("build.sampling", "build.derive"):
            (span,) = [s for s in spans if s.name == name]
            assert by_id[span.parent_id].name == "build"
        for name in (
            "build.partitioning",
            "build.variable_selection",
            "build.fitting",
        ):
            (span,) = [s for s in spans if s.name == name]
            assert by_id[span.parent_id].name == "build.derive"
        # Engine executions nest under the sampling phase.
        engine_spans = [s for s in spans if s.name == "engine.execute"]
        assert engine_spans
        (sampling,) = [s for s in spans if s.name == "build.sampling"]
        assert all(s.parent_id == sampling.span_id for s in engine_spans)
        # Every span closed, and parents envelop their children.
        for span in spans:
            assert span.end is not None
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert parent.end >= span.end

    def test_trace_exports_as_jsonl(self, traced_build, tmp_path):
        tracer, _ = traced_build
        path = tmp_path / "build.jsonl"
        count = obs.write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) > 0
        decoded = [json.loads(line) for line in lines]
        ids = {e["span_id"] for e in decoded}
        assert all(e["parent_id"] is None or e["parent_id"] in ids for e in decoded)

    def test_report_includes_derivation_cost_section(self, traced_build):
        _, outcome = traced_build
        text = derivation_report(outcome)
        assert "Derivation cost" in text
        for phase in outcome.timings:
            assert phase in text
        assert "total:" in text

    def test_validation_emits_span(self, traced_build, tracer):
        from repro.core import validate_model

        _, outcome = traced_build
        validate_model(outcome.model, outcome.observations[:10])
        (span,) = [s for s in tracer.finished() if s.name == "build.validation"]
        assert span.attributes["n_queries"] == 10

    def test_outcome_timings_default_empty_for_direct_construction(self):
        # Backward compatibility: the field is optional.
        import repro.core.builder as builder_mod

        fields = {f.name for f in builder_mod.BuildOutcome.__dataclass_fields__.values()}
        assert "timings" in fields


class TestMaintenanceInstrumentation:
    def test_rebuild_emits_span_and_counter(self, obs_site, fresh_registry):
        builder = CostModelBuilder(obs_site.database)
        maintainer = ModelMaintainer(builder)
        source = lambda n: obs_site.generator.queries_for(G1, n)
        with obs.recording() as tracer:
            maintainer.register(G1, source, sample_count=40)
        rebuild_spans = [
            s for s in tracer.finished() if s.name == "maintenance.rebuild"
        ]
        assert len(rebuild_spans) == 1
        assert rebuild_spans[0].attributes["class_label"] == "G1"
        assert rebuild_spans[0].attributes["reasons"] == ["initial build"]
        # The full build pipeline nests under the rebuild span.
        by_id = {s.span_id: s for s in tracer.finished()}
        (build,) = [s for s in tracer.finished() if s.name == "build"]
        assert by_id[build.parent_id].name == "maintenance.rebuild"
        assert fresh_registry.counter_value("maintenance.rebuilds") == 1.0
