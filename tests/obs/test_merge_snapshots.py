"""Cross-process accuracy aggregation: merging tracker snapshots.

The loadgen coordinator runs one private :class:`AccuracyTracker` per
shard and merges their snapshot payloads into the fleet-wide aggregate;
these tests pin the merge semantics: sample-weighted window stats per
(site, class, state), probe counts summed with ranges widened, drift
events concatenated — and a merged snapshot equals what one tracker
would have seen given all the samples.
"""

import json

import pytest

from repro.obs.quality import (
    AccuracyTracker,
    WindowStats,
    merge_accuracy_snapshots,
    merge_window_stats,
)

SAMPLES_A = [(10.0, 11.0), (8.0, 8.2), (5.0, 9.0)]
SAMPLES_B = [(4.0, 4.1), (7.0, 3.0)]


def tracker_with(samples, site="site_a", label="G1", state=0):
    tracker = AccuracyTracker(export=False)
    for predicted, actual in samples:
        tracker.record(site, label, state, predicted, actual)
    return tracker


class TestMergeWindowStats:
    def test_empty_merge_is_empty(self):
        merged = merge_window_stats([])
        assert merged.count == 0

    def test_weighted_means(self):
        a = WindowStats(
            count=3,
            pct_very_good=100.0,
            pct_good=100.0,
            mean_relative_error=0.1,
            bias=0.1,
            mean_predicted=10.0,
            mean_actual=10.0,
        )
        b = WindowStats(
            count=1,
            pct_very_good=0.0,
            pct_good=0.0,
            mean_relative_error=0.5,
            bias=-0.5,
            mean_predicted=2.0,
            mean_actual=4.0,
        )
        merged = merge_window_stats([a, b])
        assert merged.count == 4
        assert merged.pct_good == pytest.approx(75.0)
        assert merged.mean_relative_error == pytest.approx(0.2)
        assert merged.bias == pytest.approx(-0.05)
        assert merged.mean_predicted == pytest.approx(8.0)


class TestMergeAccuracySnapshots:
    def test_merge_equals_single_tracker(self):
        """Two half-fed trackers merge into what one full one shows."""
        merged = merge_accuracy_snapshots(
            [
                tracker_with(SAMPLES_A).snapshot(),
                tracker_with(SAMPLES_B).snapshot(),
            ]
        )
        reference = tracker_with(SAMPLES_A + SAMPLES_B).snapshot()
        assert len(merged["rows"]) == len(reference["rows"])
        for got, want in zip(merged["rows"], reference["rows"]):
            assert (got["site"], got["class"], got["state"]) == (
                want["site"],
                want["class"],
                want["state"],
            )
            assert got["n"] == want["n"]
            assert got["good_pct"] == pytest.approx(want["good_pct"])
            assert got["mean_rel_err"] == pytest.approx(want["mean_rel_err"])
            assert got["bias"] == pytest.approx(want["bias"])

    def test_distinct_keys_stay_separate(self):
        merged = merge_accuracy_snapshots(
            [
                tracker_with(SAMPLES_A, site="site_a").snapshot(),
                tracker_with(SAMPLES_B, site="site_b").snapshot(),
            ]
        )
        sites = {row["site"] for row in merged["rows"]}
        assert sites >= {"site_a", "site_b"}

    def test_probes_summed_and_widened(self):
        a = AccuracyTracker(export=False)
        b = AccuracyTracker(export=False)
        for cost in (1.0, 2.0):
            a.record_probe("site_a", cost)
        for cost in (0.5, 5.0):
            b.record_probe("site_a", cost)
        b.record_probe("site_b", 3.0)
        merged = merge_accuracy_snapshots([a.snapshot(), b.snapshot()])
        site_a = merged["probes"]["site_a"]
        assert site_a["n"] == 4
        assert site_a["min"] == 0.5
        assert site_a["max"] == 5.0
        assert site_a["last"] is None  # not well defined across processes
        assert merged["probes"]["site_b"]["n"] == 1

    def test_survives_a_json_round_trip(self):
        """Snapshots that crossed a process/JSON boundary still merge."""
        payloads = [
            json.loads(json.dumps(tracker_with(SAMPLES_A).snapshot())),
            json.loads(json.dumps(tracker_with(SAMPLES_B).snapshot())),
        ]
        merged = merge_accuracy_snapshots(payloads)
        assert sum(row["n"] for row in merged["rows"]) == 2 * (
            len(SAMPLES_A) + len(SAMPLES_B)
        )

    def test_merge_of_nothing(self):
        merged = merge_accuracy_snapshots([])
        assert merged["rows"] == []
        assert merged["probes"] == {}
        assert merged["drift_events"] == []
