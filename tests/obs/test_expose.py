"""Exposition surface: prom text, snapshots, dashboard, the CLI."""

import json

import pytest

from repro import obs
from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.mdbs.registry import CostModelRegistry, ModelProvenance
from repro.obs.__main__ import main as obs_main
from repro.obs.expose import _prom_name
from repro.obs.quality import AccuracyTracker, DriftEvent

from ..core.synthetic import stepped_sample


def make_model(label="G1"):
    X, y, probing = stepped_sample(true_states=2, n=100, seed=1)
    fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
    return MultiStateCostModel.from_fit(fit, label, "unary", "iupma")


def populated_registry() -> obs.MetricsRegistry:
    registry = obs.MetricsRegistry()
    registry.inc("mdbs.global_queries", 5)
    registry.set_gauge("mdbs.probing.cache_size", 2)
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.observe("mdbs.step_seconds", value)
    return registry


class TestPromNames:
    def test_dots_become_underscores_with_prefix(self):
        assert _prom_name("mdbs.global_queries") == "repro_mdbs_global_queries"

    def test_leading_digit_guarded(self):
        assert _prom_name("9lives", prefix="").startswith("_9")


class TestRenderText:
    def test_counters_gauges_histograms(self):
        text = obs.render_text(populated_registry())
        assert "# TYPE repro_mdbs_global_queries counter" in text
        assert "repro_mdbs_global_queries 5.0" in text
        assert "# TYPE repro_mdbs_probing_cache_size gauge" in text
        assert "# TYPE repro_mdbs_step_seconds summary" in text
        assert 'repro_mdbs_step_seconds{quantile="0.5"}' in text
        assert "repro_mdbs_step_seconds_count 4" in text
        assert "repro_mdbs_step_seconds_sum 1.0" in text

    def test_accepts_snapshot_dict_identically(self):
        registry = populated_registry()
        assert obs.render_text(registry.snapshot()) == obs.render_text(registry)

    def test_defaults_to_global_registry(self, fresh_registry):
        fresh_registry.inc("hits")
        assert "repro_hits 1.0" in obs.render_text()

    def test_empty(self):
        assert obs.render_text(obs.MetricsRegistry()) == ""


def small_payload() -> dict:
    tracker = AccuracyTracker(export=False)
    tracker.record("A", "G1", 0, predicted=1.0, actual=1.0)
    tracker.record_drift_event(
        DriftEvent("A", "G1", "good_band", 9.0, "went bad")
    )
    return obs.snapshot_payload(registry=populated_registry(), accuracy=tracker)


class TestSnapshots:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        tracker = AccuracyTracker(export=False)
        tracker.record("A", "G1", 0, predicted=1.0, actual=2.0)
        written = obs.write_snapshot(
            path, registry=populated_registry(), accuracy=tracker
        )
        assert obs.read_snapshot(path) == json.loads(json.dumps(written))

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"snapshot_version": 999}))
        with pytest.raises(ValueError, match="version"):
            obs.read_snapshot(path)

    def test_model_rows_carry_trigger(self):
        registry = CostModelRegistry()
        model = make_model()
        registry.publish(
            "A",
            model,
            ModelProvenance.from_model(model, trigger="drift[x] ..."),
        )
        payload = obs.snapshot_payload(
            registry=obs.MetricsRegistry(),
            accuracy=AccuracyTracker(export=False),
            model_registry=registry,
        )
        (row,) = payload["models"]
        assert row["site"] == "A" and row["trigger"] == "drift[x] ..."


class TestDashboard:
    def test_sections_present(self):
        text = obs.render_dashboard(small_payload())
        assert "global queries=5" in text
        assert "A/G1/s0" in text
        assert "drift[good_band] A/G1" in text
        assert "(no model registry in snapshot)" in text

    def test_empty_payload(self):
        text = obs.render_dashboard(
            obs.snapshot_payload(
                registry=obs.MetricsRegistry(),
                accuracy=AccuracyTracker(export=False),
            )
        )
        assert "(no serving activity recorded)" in text
        assert "(no accuracy samples recorded)" in text
        assert "(none)" in text


class TestDriftJsonl:
    def test_events_and_tracker_sources(self, tmp_path):
        events = [
            DriftEvent("A", "G1", "bias", 1.0, "x"),
            DriftEvent("B", "G3", "probe_escape", 2.0, "y"),
        ]
        path = tmp_path / "drift.jsonl"
        assert obs.write_drift_jsonl(events, path) == 2
        lines = path.read_text().splitlines()
        assert [DriftEvent.from_dict(json.loads(s)) for s in lines] == events

        tracker = AccuracyTracker(export=False)
        tracker.record_drift_event(events[0])
        assert obs.write_drift_jsonl(tracker, path) == 1


class TestCli:
    def _snapshot_file(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(small_payload()))
        return str(path)

    def test_dashboard_format(self, tmp_path, capsys):
        assert obs_main(["--snapshot", self._snapshot_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs dashboard" in out and "A/G1/s0" in out

    def test_prom_format(self, tmp_path, capsys):
        code = obs_main(
            ["--snapshot", self._snapshot_file(tmp_path), "--format", "prom"]
        )
        assert code == 0
        assert "# TYPE repro_mdbs_global_queries counter" in capsys.readouterr().out

    def test_missing_snapshot_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            obs_main(["--snapshot", str(tmp_path / "absent.json")])
        assert excinfo.value.code == 2

    def test_nonpositive_watch_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            obs_main(
                ["--snapshot", self._snapshot_file(tmp_path), "--watch", "0"]
            )
