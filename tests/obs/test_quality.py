"""Model-quality telemetry: windows, the tracker, drift rules."""

import pytest

from repro import obs
from repro.core import validation
from repro.obs import quality
from repro.obs.quality import (
    AccuracySample,
    AccuracyTracker,
    AccuracyWindow,
    DriftDetector,
    DriftEvent,
    DriftPolicy,
    accuracy_table,
)


class FakeStates:
    """Duck-typed stand-in for ContentionStates in drift checks."""

    def __init__(self, cmin: float, cmax: float) -> None:
        self.cmin = cmin
        self.cmax = cmax


def test_band_constants_pin_the_offline_validator():
    """quality restates §5 band thresholds; they must match core.validation."""
    assert quality.VERY_GOOD_RELATIVE_ERROR == validation.VERY_GOOD_RELATIVE_ERROR
    assert quality.GOOD_FACTOR == validation.GOOD_FACTOR


class TestAccuracySample:
    def test_bands_match_offline_validator(self):
        for predicted, actual in [
            (1.0, 1.0), (1.25, 1.0), (1.35, 1.0), (1.9, 1.0),
            (2.5, 1.0), (0.4, 1.0), (0.75, 1.0),
        ]:
            sample = AccuracySample.make(predicted, actual, at_time=0.0)
            assert sample.very_good == validation.is_very_good(predicted, actual)
            assert sample.good == validation.is_good(predicted, actual)

    def test_zero_actual(self):
        perfect = AccuracySample.make(0.0, 0.0, at_time=0.0)
        assert perfect.relative_error == 0.0 and perfect.good
        miss = AccuracySample.make(1.0, 0.0, at_time=0.0)
        assert miss.relative_error == float("inf") and not miss.good

    def test_signed_error_direction(self):
        assert AccuracySample.make(0.5, 1.0, at_time=0.0).signed_error < 0
        assert AccuracySample.make(2.0, 1.0, at_time=0.0).signed_error > 0


class TestAccuracyWindow:
    def test_stats_match_recomputation_after_eviction(self):
        window = AccuracyWindow(window_size=5)
        pairs = [(1.0, 1.0), (3.0, 1.0), (1.1, 1.0), (0.2, 1.0),
                 (1.0, 2.5), (2.0, 2.0), (0.9, 1.0), (5.0, 1.0)]
        for predicted, actual in pairs:
            window.record(predicted, actual)
        assert len(window) == 5
        kept = [AccuracySample.make(p, a, 0.0) for p, a in pairs[-5:]]
        stats = window.stats()
        assert stats.count == 5
        assert stats.pct_good == pytest.approx(
            100.0 * sum(s.good for s in kept) / 5
        )
        assert stats.mean_relative_error == pytest.approx(
            sum(s.relative_error for s in kept) / 5
        )
        assert stats.bias == pytest.approx(sum(s.signed_error for s in kept) / 5)

    def test_recent_stats_sees_only_the_tail(self):
        window = AccuracyWindow(window_size=16)
        for _ in range(8):
            window.record(1.0, 1.0)  # perfect
        for _ in range(4):
            window.record(10.0, 1.0)  # terrible
        assert window.stats().pct_good == pytest.approx(100.0 * 8 / 12)
        assert window.recent_stats(4).pct_good == 0.0
        assert window.recent_stats(100).count == 12

    def test_empty_and_validation(self):
        window = AccuracyWindow()
        assert window.stats().count == 0
        with pytest.raises(ValueError):
            AccuracyWindow(window_size=0)
        with pytest.raises(ValueError):
            window.recent_stats(0)


class TestAccuracyTracker:
    def test_state_and_class_windows(self):
        tracker = AccuracyTracker(export=False)
        tracker.record("A", "G1", 0, predicted=1.0, actual=1.0)
        tracker.record("A", "G1", 2, predicted=9.0, actual=1.0)
        assert tracker.keys() == [("A", "G1", 0), ("A", "G1", 2)]
        assert tracker.class_keys() == [("A", "G1")]
        assert tracker.stats("A", "G1", 0).pct_good == 100.0
        assert tracker.stats("A", "G1", 2).pct_good == 0.0
        assert tracker.stats("A", "G1").count == 2
        assert tracker.sample_count() == 2

    def test_unknown_key_is_empty(self):
        tracker = AccuracyTracker(export=False)
        assert tracker.stats("nowhere", "G9").count == 0
        assert tracker.recent_stats("nowhere", "G9", 4).count == 0
        assert tracker.probe_readings("nowhere") == []

    def test_export_feeds_global_registry(self, fresh_registry):
        tracker = AccuracyTracker(metric_prefix="t.acc")
        tracker.record("A", "G1", 0, predicted=1.0, actual=1.0)
        tracker.record("A", "G1", 0, predicted=9.0, actual=1.0)
        assert fresh_registry.counter_value("t.acc.samples") == 2
        assert fresh_registry.gauge_value("t.acc.A.G1.good_pct") == 50.0
        assert fresh_registry.histogram("t.acc.rel_error").count == 2

    def test_export_false_stays_private(self, fresh_registry):
        tracker = AccuracyTracker(export=False)
        tracker.record("A", "G1", 0, predicted=1.0, actual=1.0)
        assert fresh_registry.names() == []

    def test_probe_window_bounded(self):
        tracker = AccuracyTracker(export=False, probe_window_size=3)
        for i in range(5):
            tracker.record_probe("A", float(i), at_time=float(i))
        readings = tracker.probe_readings("A")
        assert [cost for cost, _ in readings] == [2.0, 3.0, 4.0]

    def test_reset_scopes(self):
        tracker = AccuracyTracker(export=False)
        for site in ("A", "B"):
            tracker.record(site, "G1", 0, predicted=1.0, actual=1.0)
            tracker.record(site, "G3", 0, predicted=1.0, actual=1.0)
            tracker.record_probe(site, 0.5)
        tracker.reset("A", "G1")
        assert ("A", "G1") not in tracker.class_keys()
        assert ("A", "G3") in tracker.class_keys()
        assert tracker.probe_readings("A") == []  # site probes re-anchor
        assert tracker.probe_readings("B") != []
        tracker.reset("B")
        assert tracker.class_keys() == [("A", "G3")]
        tracker.reset()
        assert tracker.class_keys() == []

    def test_snapshot_round_trips_through_table(self):
        tracker = AccuracyTracker(export=False)
        tracker.record("A", "G1", 1, predicted=1.0, actual=1.0)
        tracker.record_probe("A", 0.4)
        event = DriftEvent("A", "G1", "bias", 9.0, "detail")
        tracker.record_drift_event(event)
        snapshot = tracker.snapshot()
        states = {(r["site"], r["class"], r["state"]) for r in snapshot["rows"]}
        assert states == {("A", "G1", 1), ("A", "G1", None)}
        assert snapshot["probes"]["A"]["n"] == 1
        assert snapshot["drift_events"] == [event.to_dict()]
        assert accuracy_table(snapshot) == accuracy_table(tracker)

    def test_global_tracker_swap(self):
        mine = AccuracyTracker(export=False)
        previous = obs.set_tracker(mine)
        try:
            assert obs.get_tracker() is mine
        finally:
            obs.set_tracker(previous)


class TestAccuracyTable:
    def test_sorted_with_class_aggregate_last(self):
        tracker = AccuracyTracker(export=False)
        tracker.record("B", "G1", 1, predicted=1.0, actual=1.0)
        tracker.record("A", "G3", 2, predicted=1.0, actual=1.0)
        tracker.record("A", "G3", 0, predicted=1.0, actual=1.0)
        lines = accuracy_table(tracker).splitlines()[2:]
        keys = [line.split()[0] for line in lines]
        assert keys == ["A/G3/s0", "A/G3/s2", "A/G3/*", "B/G1/s1", "B/G1/*"]

    def test_empty(self):
        assert "no accuracy samples" in accuracy_table(AccuracyTracker(export=False))


class TestDriftDetector:
    def _tracker_with(self, good: int, bad: int) -> AccuracyTracker:
        tracker = AccuracyTracker(export=False)
        for _ in range(good):
            tracker.record("A", "G1", 0, predicted=1.0, actual=1.0)
        for _ in range(bad):
            tracker.record("A", "G1", 0, predicted=10.0, actual=1.0)
        return tracker

    def test_good_band_rule_fires(self):
        tracker = self._tracker_with(good=0, bad=16)
        detector = DriftDetector(DriftPolicy(probe_escape_fraction=None))
        events = detector.check(tracker, "A", {"G1": None}, now=100.0)
        assert [e.rule for e in events] == ["good_band"]
        assert events[0].class_label == "G1"
        assert "floor" in events[0].detail

    def test_min_samples_gates_accuracy_rules(self):
        tracker = self._tracker_with(good=0, bad=4)
        detector = DriftDetector(
            DriftPolicy(min_samples=12, probe_escape_fraction=None)
        )
        assert detector.check(tracker, "A", {"G1": None}, now=0.0) == []

    def test_bias_rule_fires_when_band_rule_disabled(self):
        tracker = AccuracyTracker(export=False)
        # Sustained ~1.9x overestimation: inside the 2x "good" band, but
        # heavily biased.
        for _ in range(20):
            tracker.record("A", "G1", 0, predicted=1.9, actual=1.0)
        detector = DriftDetector(
            DriftPolicy(
                good_band_floor_pct=None,
                bias_limit=0.5,
                probe_escape_fraction=None,
            )
        )
        events = detector.check(tracker, "A", {"G1": None}, now=0.0)
        assert [e.rule for e in events] == ["bias"]
        assert events[0].stats["bias"] == pytest.approx(0.9)

    def test_probe_escape_fires_before_any_accuracy_sample(self):
        tracker = AccuracyTracker(export=False)
        for cost in (0.9, 0.95, 1.0, 1.05):
            tracker.record_probe("A", cost)
        detector = DriftDetector(DriftPolicy(probe_min_readings=4))
        events = detector.check(
            tracker, "A", {"G1": FakeStates(0.1, 0.4)}, now=5.0
        )
        assert [e.rule for e in events] == ["probe_escape"]
        assert events[0].stats["escaped_fraction"] == 1.0

    def test_probe_margin_tolerates_edge_clamping(self):
        tracker = AccuracyTracker(export=False)
        for cost in (0.41, 0.42, 0.43, 0.44):  # just past cmax=0.4
            tracker.record_probe("A", cost)
        detector = DriftDetector(DriftPolicy(probe_margin=0.10))
        assert (
            detector.check(tracker, "A", {"G1": FakeStates(0.1, 0.4)}, now=0.0)
            == []
        )

    def test_at_most_one_event_per_class_and_rule_priority(self):
        # Both probe_escape and good_band would fire; escape wins.
        tracker = self._tracker_with(good=0, bad=16)
        for cost in (2.0, 2.0, 2.0, 2.0):
            tracker.record_probe("A", cost)
        detector = DriftDetector(DriftPolicy())
        events = detector.check(
            tracker, "A", {"G1": FakeStates(0.1, 0.4)}, now=0.0
        )
        assert [e.rule for e in events] == ["probe_escape"]

    def test_cooldown_suppresses_refire(self):
        tracker = self._tracker_with(good=0, bad=16)
        detector = DriftDetector(
            DriftPolicy(probe_escape_fraction=None, cooldown_seconds=100.0)
        )
        assert detector.check(tracker, "A", {"G1": None}, now=0.0)
        assert detector.check(tracker, "A", {"G1": None}, now=50.0) == []
        assert detector.check(tracker, "A", {"G1": None}, now=150.0)

    def test_all_rules_disabled_never_fires(self):
        tracker = self._tracker_with(good=0, bad=50)
        detector = DriftDetector(
            DriftPolicy(
                good_band_floor_pct=None,
                bias_limit=None,
                probe_escape_fraction=None,
            )
        )
        assert detector.check(tracker, "A", {"G1": None}, now=0.0) == []


class TestDriftEvent:
    def test_round_trip(self):
        event = DriftEvent(
            site="A",
            class_label="G3",
            rule="good_band",
            at_time=42.0,
            detail="good-band 10% < 50% floor",
            stats={"n": 16},
        )
        assert DriftEvent.from_dict(event.to_dict()) == event

    def test_describe_mentions_rule_site_class(self):
        event = DriftEvent("A", "G3", "bias", 7.0, "over")
        text = event.describe()
        assert "bias" in text and "A/G3" in text and "over" in text
