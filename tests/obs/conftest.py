"""Fixtures for observability tests: isolated global tracer/registry."""

import pytest

from repro import obs


@pytest.fixture
def fresh_registry():
    """Swap in an empty global registry for the test, restore after."""
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    yield registry
    obs.set_registry(previous)


@pytest.fixture
def tracer():
    """A recording global tracer for the test, restored after."""
    with obs.recording() as t:
        yield t
