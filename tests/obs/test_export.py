"""Unit tests for the trace/metrics exporters."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    metrics_table,
    summary_table,
    to_jsonl,
    tree_lines,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry


def record_small_trace(tracer):
    with obs.span("outer", site="A"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    return tracer.finished()


class TestJsonl:
    def test_round_trips_through_json(self, tracer):
        spans = record_small_trace(tracer)
        lines = to_jsonl(spans).strip().splitlines()
        assert len(lines) == 3
        decoded = [json.loads(line) for line in lines]
        for entry in decoded:
            assert set(entry) == {
                "name",
                "span_id",
                "parent_id",
                "start",
                "end",
                "duration",
                "thread",
                "attributes",
            }
            assert entry["end"] >= entry["start"]

    def test_parent_links_resolve(self, tracer):
        spans = record_small_trace(tracer)
        decoded = [json.loads(line) for line in to_jsonl(spans).splitlines()]
        ids = {e["span_id"] for e in decoded}
        for entry in decoded:
            assert entry["parent_id"] is None or entry["parent_id"] in ids
        roots = [e for e in decoded if e["parent_id"] is None]
        assert [r["name"] for r in roots] == ["outer"]
        assert roots[0]["attributes"] == {"site": "A"}

    def test_write_jsonl_returns_span_count(self, tracer, tmp_path):
        spans = record_small_trace(tracer)
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(spans, path) == 3
        assert len(path.read_text().splitlines()) == 3

    def test_accepts_tracer_directly(self, tracer):
        record_small_trace(tracer)
        assert len(to_jsonl(tracer).splitlines()) == 3

    def test_non_json_attribute_values_stringified(self, tracer):
        with obs.span("s", obj=object()):
            pass
        (line,) = to_jsonl(tracer).splitlines()
        assert "object object" in json.loads(line)["attributes"]["obj"]


class TestSummaryTable:
    def test_aggregates_per_name(self, tracer):
        record_small_trace(tracer)
        table = summary_table(tracer)
        assert "span" in table and "count" in table and "p95_s" in table
        inner_row = next(
            line for line in table.splitlines() if line.startswith("inner")
        )
        assert inner_row.split()[1] == "2"
        outer_row = next(
            line for line in table.splitlines() if line.startswith("outer")
        )
        assert outer_row.split()[1] == "1"

    def test_sort_modes(self, tracer):
        record_small_trace(tracer)
        by_name = summary_table(tracer, sort_by="name").splitlines()[2:]
        assert [row.split()[0] for row in by_name] == ["inner", "outer"]
        by_count = summary_table(tracer, sort_by="count").splitlines()[2:]
        assert by_count[0].startswith("inner")
        # "total": outer contains both inners, so it sorts first.
        by_total = summary_table(tracer, sort_by="total").splitlines()[2:]
        assert by_total[0].startswith("outer")

    def test_unknown_sort_rejected(self, tracer):
        record_small_trace(tracer)
        with pytest.raises(ValueError):
            summary_table(tracer, sort_by="zebra")

    def test_empty_trace(self):
        assert summary_table([]) == "(no spans recorded)"


class TestMetricsTable:
    def test_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.inc("queries", 3)
        registry.set_gauge("level", 0.5)
        registry.observe("elapsed", 1.0)
        table = metrics_table(registry)
        assert "queries" in table and "counter" in table
        assert "level" in table and "gauge" in table
        assert "elapsed" in table and "histogram" in table and "p95=" in table

    def test_empty_registry(self):
        assert metrics_table(MetricsRegistry()) == "(no metrics recorded)"


class TestTreeLines:
    def test_indentation_follows_parentage(self, tracer):
        record_small_trace(tracer)
        lines = tree_lines(tracer.finished())
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert lines[2].startswith("  inner")
