"""Unit tests for the trace/metrics exporters."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.export import (
    metrics_table,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    summary_table,
    to_jsonl,
    tree_lines,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span


def record_small_trace(tracer):
    with obs.span("outer", site="A"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    return tracer.finished()


class TestJsonl:
    def test_round_trips_through_json(self, tracer):
        spans = record_small_trace(tracer)
        lines = to_jsonl(spans).strip().splitlines()
        assert len(lines) == 3
        decoded = [json.loads(line) for line in lines]
        for entry in decoded:
            assert set(entry) == {
                "name",
                "span_id",
                "parent_id",
                "trace_id",
                "start",
                "end",
                "duration",
                "thread",
                "attributes",
            }
            assert entry["end"] >= entry["start"]

    def test_parent_links_resolve(self, tracer):
        spans = record_small_trace(tracer)
        decoded = [json.loads(line) for line in to_jsonl(spans).splitlines()]
        ids = {e["span_id"] for e in decoded}
        for entry in decoded:
            assert entry["parent_id"] is None or entry["parent_id"] in ids
        roots = [e for e in decoded if e["parent_id"] is None]
        assert [r["name"] for r in roots] == ["outer"]
        assert roots[0]["attributes"] == {"site": "A"}

    def test_write_jsonl_returns_span_count(self, tracer, tmp_path):
        spans = record_small_trace(tracer)
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(spans, path) == 3
        assert len(path.read_text().splitlines()) == 3

    def test_accepts_tracer_directly(self, tracer):
        record_small_trace(tracer)
        assert len(to_jsonl(tracer).splitlines()) == 3

    def test_non_json_attribute_values_stringified(self, tracer):
        with obs.span("s", obj=object()):
            pass
        (line,) = to_jsonl(tracer).splitlines()
        assert "object object" in json.loads(line)["attributes"]["obj"]


#: JSON-representable attribute values (what instrumented code attaches).
_attr_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)

_spans = st.builds(
    Span,
    name=st.text(min_size=1, max_size=30),
    attributes=st.dictionaries(
        st.text(min_size=1, max_size=15), _attr_values, max_size=4
    ),
    span_id=st.integers(min_value=1, max_value=2**31),
    parent_id=st.one_of(st.none(), st.integers(min_value=1, max_value=2**31)),
    trace_id=st.one_of(st.none(), st.text(max_size=24)),
    start=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    end=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
    ),
    thread=st.text(max_size=20),
)


class TestJsonlRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(spans=st.lists(_spans, max_size=8))
    def test_export_import_round_trip(self, spans, tmp_path_factory):
        """write_jsonl -> read_jsonl preserves every span field exactly
        (the contract cross-process trace merging rests on)."""
        path = tmp_path_factory.mktemp("trace") / "roundtrip.jsonl"
        assert write_jsonl(spans, path) == len(spans)
        recovered = read_jsonl(path)
        assert [span_to_dict(s) for s in recovered] == [
            span_to_dict(s) for s in spans
        ]

    @settings(max_examples=50, deadline=None)
    @given(span=_spans)
    def test_dict_round_trip_is_exact(self, span):
        assert span_to_dict(span_from_dict(span_to_dict(span))) == span_to_dict(
            span
        )


class TestSummaryTable:
    def test_aggregates_per_name(self, tracer):
        record_small_trace(tracer)
        table = summary_table(tracer)
        assert "span" in table and "count" in table and "p95_s" in table
        inner_row = next(
            line for line in table.splitlines() if line.startswith("inner")
        )
        assert inner_row.split()[1] == "2"
        outer_row = next(
            line for line in table.splitlines() if line.startswith("outer")
        )
        assert outer_row.split()[1] == "1"

    def test_sort_modes(self, tracer):
        record_small_trace(tracer)
        by_name = summary_table(tracer, sort_by="name").splitlines()[2:]
        assert [row.split()[0] for row in by_name] == ["inner", "outer"]
        by_count = summary_table(tracer, sort_by="count").splitlines()[2:]
        assert by_count[0].startswith("inner")
        # "total": outer contains both inners, so it sorts first.
        by_total = summary_table(tracer, sort_by="total").splitlines()[2:]
        assert by_total[0].startswith("outer")

    def test_unknown_sort_rejected(self, tracer):
        record_small_trace(tracer)
        with pytest.raises(ValueError):
            summary_table(tracer, sort_by="zebra")

    def test_empty_trace(self):
        assert summary_table([]) == "(no spans recorded)"


class TestMetricsTable:
    def test_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.inc("queries", 3)
        registry.set_gauge("level", 0.5)
        registry.observe("elapsed", 1.0)
        table = metrics_table(registry)
        assert "queries" in table and "counter" in table
        assert "level" in table and "gauge" in table
        assert "elapsed" in table and "histogram" in table and "p95=" in table

    def test_empty_registry(self):
        assert metrics_table(MetricsRegistry()) == "(no metrics recorded)"


class TestTreeLines:
    def test_indentation_follows_parentage(self, tracer):
        record_small_trace(tracer)
        lines = tree_lines(tracer.finished())
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert lines[2].startswith("  inner")
