"""Unit tests for the metrics registry: counters, gauges, histograms."""

import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_concurrent_increments_are_exact(self):
        c = Counter("c")
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                c.add()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread


class TestGauge:
    def test_unset_is_none(self):
        assert Gauge("g").value is None

    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_add_accumulates_from_zero(self):
        g = Gauge("g")
        g.add(2.0)
        g.add(-0.5)
        assert g.value == 1.5


class TestQuantileFunction:
    def test_matches_numpy_linear_interpolation(self, rng):
        values = sorted(rng.normal(size=501))
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0):
            assert quantile(values, q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_single_value(self):
        assert quantile([7.0], 0.95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestHistogram:
    def test_exact_summary_statistics(self, rng):
        h = Histogram("h")
        values = rng.uniform(1.0, 9.0, size=300)
        for v in values:
            h.record(v)
        assert h.count == 300
        assert h.sum == pytest.approx(float(values.sum()))
        assert h.minimum == pytest.approx(float(values.min()))
        assert h.maximum == pytest.approx(float(values.max()))
        assert h.mean == pytest.approx(float(values.mean()))

    def test_quantiles_exact_below_reservoir_size(self, rng):
        h = Histogram("h", reservoir_size=1000)
        values = rng.exponential(size=500)
        for v in values:
            h.record(v)
        for q in (0.5, 0.95):
            assert h.quantile(q) == pytest.approx(float(np.quantile(values, q)))
        p50, p95 = h.quantiles((0.5, 0.95))
        assert p50 <= p95

    def test_reservoir_bounds_memory(self, rng):
        h = Histogram("h", reservoir_size=64)
        for v in rng.uniform(0.0, 1.0, size=10_000):
            h.record(v)
        assert h.count == 10_000
        assert len(h._reservoir) == 64
        # Quantiles still land inside the observed range.
        assert 0.0 <= h.quantile(0.5) <= 1.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.minimum is None and h.maximum is None and h.mean is None
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir_size=0)

    def test_concurrent_recording_keeps_exact_count(self):
        h = Histogram("h", reservoir_size=128)
        n_threads, per_thread = 8, 2000

        def work(tid):
            for i in range(per_thread):
                h.record(float(tid * per_thread + i))

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == n_threads * per_thread
        assert len(h._reservoir) == 128


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_shortcuts_record(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 7.0)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        snap = registry.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2.0}
        assert snap["g"] == {"kind": "gauge", "value": 7.0}
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == pytest.approx(2.0)
        assert "p50" in snap["h"] and "p95" in snap["h"]

    def test_counter_value_without_side_effect(self):
        registry = MetricsRegistry()
        assert registry.counter_value("missing") == 0.0
        assert registry.names() == []
        registry.inc("c")
        assert registry.counter_value("c") == 1.0

    def test_counters_lists_only_counters(self):
        registry = MetricsRegistry()
        registry.inc("b", 2)
        registry.inc("a", 3)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        assert registry.counters() == {"a": 3.0, "b": 2.0}

    def test_merge_counters_folds_worker_deltas_in(self):
        parent = MetricsRegistry()
        parent.inc("shared", 1)
        parent.merge_counters({"shared": 4.0, "worker_only": 2.0, "zero": 0.0})
        assert parent.counter_value("shared") == 5.0
        assert parent.counter_value("worker_only") == 2.0
        # Zero deltas create no metric at all.
        assert "zero" not in parent.names()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.snapshot() == {}

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 2.0)
        json.dumps(registry.snapshot())

    def test_global_registry_swap(self, fresh_registry):
        from repro import obs

        obs.inc("x")
        assert fresh_registry.counter_value("x") == 1.0
        obs.observe("y", 5.0)
        obs.set_gauge("z", 2.0)
        assert set(fresh_registry.names()) == {"x", "y", "z"}
