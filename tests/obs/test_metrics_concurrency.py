"""Concurrency stress tests for the metric primitives.

The serving layer records from many worker threads; these tests pin the
two properties that make that safe:

* no lost updates — N threads hammering one counter/histogram land
  exactly N*K increments (per-metric locks);
* safe lazy creation — racing first-use of the *same* name yields one
  metric object for everyone (the lock-free fast path never hands two
  threads different objects).
"""

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

THREADS = 8
PER_THREAD = 5_000


def hammer(thread_count, target):
    """Run *target(i)* in *thread_count* threads from a common barrier."""
    barrier = threading.Barrier(thread_count)
    errors = []

    def runner(i):
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # pragma: no cover - diagnostic path
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(thread_count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestNoLostIncrements:
    def test_counter_exact_under_contention(self):
        registry = MetricsRegistry()

        def work(_):
            for _ in range(PER_THREAD):
                registry.inc("stress.counter")

        hammer(THREADS, work)
        assert registry.counter_value("stress.counter") == THREADS * PER_THREAD

    def test_weighted_counter_exact_under_contention(self):
        registry = MetricsRegistry()

        def work(_):
            for _ in range(PER_THREAD):
                registry.inc("stress.weighted", 2.0)

        hammer(THREADS, work)
        assert registry.counter_value("stress.weighted") == THREADS * PER_THREAD * 2.0

    def test_histogram_count_and_sum_exact(self):
        registry = MetricsRegistry()

        def work(_):
            for _ in range(PER_THREAD):
                registry.observe("stress.hist", 1.0)

        hammer(THREADS, work)
        histogram = registry.histogram("stress.hist")
        assert histogram.count == THREADS * PER_THREAD
        assert histogram.sum == float(THREADS * PER_THREAD)

    def test_gauge_last_write_is_a_written_value(self):
        registry = MetricsRegistry()

        def work(i):
            for _ in range(PER_THREAD):
                registry.set_gauge("stress.gauge", float(i))

        hammer(THREADS, work)
        assert registry.gauge_value("stress.gauge") in {float(i) for i in range(THREADS)}


class TestLazyCreationRaces:
    def test_racing_first_use_agrees_on_one_object(self):
        registry = MetricsRegistry()
        seen = [None] * THREADS

        def work(i):
            seen[i] = registry.counter("race.counter")
            registry.inc("race.counter")

        hammer(THREADS, work)
        assert len({id(metric) for metric in seen}) == 1
        assert registry.counter_value("race.counter") == THREADS

    def test_many_distinct_names_created_concurrently(self):
        registry = MetricsRegistry()

        def work(i):
            for k in range(200):
                registry.inc(f"race.many.{i}.{k}")

        hammer(THREADS, work)
        created = [n for n in registry.names() if n.startswith("race.many.")]
        assert len(created) == THREADS * 200
        assert all(
            registry.counter_value(name) == 1.0 for name in created
        )

    def test_fast_path_returns_existing_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("fast.path")
        assert registry.counter("fast.path") is first
        assert registry.histogram("fast.hist") is registry.histogram("fast.hist")
        assert registry.gauge("fast.gauge") is registry.gauge("fast.gauge")

    def test_kind_mismatch_still_raises(self):
        registry = MetricsRegistry()
        registry.inc("kind.mismatch")
        with pytest.raises(TypeError):
            registry.gauge("kind.mismatch")
        with pytest.raises(TypeError):
            registry.histogram("kind.mismatch")


class TestPrimitiveLocks:
    def test_bare_counter_is_exact(self):
        counter = Counter("bare")
        hammer(THREADS, lambda _: [counter.add() for _ in range(PER_THREAD)])
        assert counter.value == THREADS * PER_THREAD

    def test_bare_gauge_add_is_exact(self):
        gauge = Gauge("bare")
        hammer(THREADS, lambda _: [gauge.add(1.0) for _ in range(PER_THREAD)])
        assert gauge.value == THREADS * PER_THREAD

    def test_bare_histogram_reservoir_stays_bounded(self):
        histogram = Histogram("bare", reservoir_size=64)
        hammer(THREADS, lambda _: [histogram.record(0.5) for _ in range(PER_THREAD)])
        assert histogram.count == THREADS * PER_THREAD
        assert len(histogram._reservoir) == 64
        assert histogram.quantile(0.5) == 0.5
