"""End-to-end model lifecycle: derive -> publish -> serve -> maintain -> rollback.

Uses its own single-site MDBS (separate from the session-scoped
``mini_mdbs``) because maintenance deliberately mutates the site:
rebuilds advance the simulated clock and rebase the change detector.
"""

import pytest

from repro import obs
from repro.core.classification import G1
from repro.engine.profiles import ORACLE_LIKE
from repro.mdbs.agent import MDBSAgent
from repro.mdbs.registry import config_fingerprint
from repro.mdbs.server import MDBSServer
from repro.workload import make_site

TABLES = ["R1", "R2", "R3", "R4"]
REBUILD_PERIOD = 50_000.0


@pytest.fixture(scope="module")
def lifecycle():
    site = make_site(
        "lifesite", profile=ORACLE_LIKE, environment_kind="uniform",
        scale=0.01, seed=77,
    )
    server = MDBSServer()
    server.register_agent(MDBSAgent(site.database))
    return server, site


def test_full_lifecycle(lifecycle):
    server, site = lifecycle
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    try:
        # Derive + publish: registering a class builds the model and
        # publishes it as version 1, with full provenance.
        maintainer = server.configure_maintenance(
            site.name, rebuild_period_seconds=REBUILD_PERIOD
        )
        v1 = server.register_model_class(
            site.name,
            G1,
            lambda n: site.generator.queries_for(G1, n, tables=TABLES),
            sample_count=40,
        )
        assert v1.version == 1
        assert v1.provenance.algorithm == "iupma"
        assert v1.provenance.sample_size == 40
        assert v1.provenance.config_hash == config_fingerprint(
            maintainer.builder.config
        )
        assert 0.0 <= v1.provenance.derived_at <= site.environment.now

        # Serve: the optimizer-facing surface resolves to the active version.
        assert server.catalog.cost_model(site.name, "G1") is v1.model

        # Nothing due yet: the rebuild period hasn't elapsed and the
        # catalog hasn't changed.
        assert server.maintain() == {site.name: {}}
        assert len(server.catalog.cost_model_history(site.name, "G1")) == 1

        # Maintain: once the rebuild period elapses, maintain() re-derives
        # and publishes version 2 — version 1 stays in the history.
        site.environment.advance(REBUILD_PERIOD + 1.0)
        results = server.maintain()
        assert set(results[site.name]) == {"G1"}
        history = server.catalog.cost_model_history(site.name, "G1")
        assert [v.version for v in history] == [1, 2]
        v2 = server.catalog.registry.active_version(site.name, "G1")
        assert v2.version == 2
        assert server.catalog.cost_model(site.name, "G1") is results[site.name][
            "G1"
        ].model
        assert v2.provenance.derived_at > v1.provenance.derived_at

        # Rollback: the previously active version is served again, and the
        # superseded one is still in the history.
        restored = server.rollback_model(site.name, "G1")
        assert restored.version == 1
        assert server.catalog.cost_model(site.name, "G1") is v1.model
        assert [
            v.version for v in server.catalog.cost_model_history(site.name, "G1")
        ] == [1, 2]

        assert registry.counter_value("mdbs.registry.published") == 2.0
        assert registry.counter_value("mdbs.registry.rollbacks") == 1.0
        assert registry.counter_value("mdbs.maintenance_runs") == 2.0
        assert registry.gauge_value("mdbs.registry.versions") == 2
    finally:
        obs.set_registry(previous)


def test_catalog_change_triggers_rebuild(lifecycle):
    server, site = lifecycle
    before = len(server.catalog.cost_model_history(site.name, "G1"))

    # An occasionally-changing factor: a new table appears at the site
    # (R1..R12 exist already; R13 does not).
    site.database.create_table(
        "R13",
        site.database.catalog.table("R1").schema.columns,
        [],
    )
    try:
        results = server.maintain()
    finally:
        site.database.catalog.drop_table("R13")
        server.maintainers[site.name].detector.rebase()

    assert "G1" in results[site.name]
    history = server.catalog.cost_model_history(site.name, "G1")
    assert len(history) == before + 1
    # The fresh version is active (publication re-activates after the
    # rollback in the previous test).
    assert (
        server.catalog.registry.active_version(site.name, "G1").version
        == history[-1].version
    )


def test_maintenance_invalidates_probe_cache(lifecycle):
    server, site = lifecycle
    server.probing.ttl = 600.0
    try:
        server.probing.probe(site.name)
        executed = server.probing.probes_executed[site.name]
        site.environment.advance(REBUILD_PERIOD + 1.0)
        results = server.maintain()
        assert results[site.name]  # the period elapsed, so it rebuilt
        server.probing.probe(site.name)
        assert server.probing.probes_executed[site.name] == executed + 1
    finally:
        server.probing.ttl = 0.0
        server.probing.invalidate()
