"""Buffer-hit state as a qualitative variable through the MDBS tier:
observation metadata, model provenance, and composite accuracy keys."""

import json

import pytest

from repro import obs
from repro.core.builder import CostModelBuilder
from repro.core.classification import G1
from repro.mdbs.agent import MDBSAgent
from repro.mdbs.optimizer import CostEstimate, GlobalPlan
from repro.mdbs.registry import CostModelRegistry, ModelProvenance
from repro.mdbs.server import GlobalExecution, MDBSServer, StepTiming
from repro.obs.quality import AccuracyTracker, accuracy_table
from repro.workload import make_site


@pytest.fixture(scope="module")
def pooled_outcome():
    """A G1 model derived on a site that simulates a memory hierarchy."""
    site = make_site(
        "pooled_site", environment_kind="uniform", scale=0.008, seed=91,
        buffer_pages=128,
    )
    builder = CostModelBuilder(site.database)
    queries = site.generator.queries_for(G1, 80, tables=["R1", "R2", "R3"])
    return site, builder.build(G1, queries, algorithm="iupma")


class TestObservationMetadata:
    def test_every_observation_carries_hit_state(self, pooled_outcome):
        _, outcome = pooled_outcome
        for observation in outcome.observations:
            assert observation.metadata["buffer_hit_state"] in (
                "cold", "warm", "hot",
            )
            assert 0.0 <= observation.metadata["buffer_hit_rate"] <= 1.0

    def test_plain_site_has_no_hit_metadata(self):
        site = make_site("plain_site", scale=0.008, seed=92)
        builder = CostModelBuilder(site.database)
        queries = site.generator.queries_for(G1, 10, tables=["R1"])
        observations = builder.collect(queries)
        assert all("buffer_hit_state" not in o.metadata for o in observations)


class TestModelProvenance:
    def test_derived_model_lists_buffer_hit_state(self, pooled_outcome):
        _, outcome = pooled_outcome
        metadata = outcome.model.metadata
        assert metadata["qualitative_variables"] == [
            "contention_state", "buffer_hit_state",
        ]
        observed = metadata["observed_buffer_hit_states"]
        assert observed and set(observed) <= {"cold", "warm", "hot"}

    def test_provenance_round_trips_through_registry(self, pooled_outcome):
        _, outcome = pooled_outcome
        registry = CostModelRegistry()
        version = registry.publish("pooled_site", outcome.model)
        provenance = version.provenance
        assert provenance.qualitative_variables == (
            "contention_state", "buffer_hit_state",
        )
        restored = ModelProvenance.from_dict(
            json.loads(json.dumps(provenance.to_dict()))
        )
        assert restored.qualitative_variables == provenance.qualitative_variables

    def test_poolless_model_keeps_contention_only(self):
        site = make_site("plain_site2", scale=0.008, seed=93)
        builder = CostModelBuilder(site.database)
        queries = site.generator.queries_for(G1, 80, tables=["R1", "R2", "R3"])
        outcome = builder.build(G1, queries, algorithm="iupma")
        assert outcome.model.metadata["qualitative_variables"] == [
            "contention_state"
        ]
        version = CostModelRegistry().publish("plain_site2", outcome.model)
        assert version.provenance.qualitative_variables == ("contention_state",)


class TestCompositeAccuracyKeys:
    def test_plain_and_composite_states_coexist(self):
        tracker = AccuracyTracker()
        tracker.record("s1", "G1", 0, predicted=1.0, actual=1.1)
        tracker.record("s1", "G1", (0, "warm"), predicted=1.0, actual=2.0)
        tracker.record("s1", "G1", (1, "hot"), predicted=1.0, actual=1.0)
        keys = tracker.keys()
        assert keys == [
            ("s1", "G1", 0),
            ("s1", "G1", (0, "warm")),
            ("s1", "G1", (1, "hot")),
        ]
        assert tracker.stats("s1", "G1", (0, "warm")).count == 1
        assert tracker.stats("s1", "G1").count == 3  # class aggregate

    def test_table_and_snapshot_render_composite_states(self):
        tracker = AccuracyTracker()
        tracker.record("s1", "G1", (0, "cold"), predicted=1.0, actual=1.0)
        tracker.record("s1", "G1", 2, predicted=1.0, actual=1.0)
        rendered = accuracy_table(tracker)
        assert "s0/cold" in rendered and "s2" in rendered
        json.dumps(tracker.snapshot())  # must stay JSON-serializable

    def test_server_records_composite_key_for_pooled_site(self, pooled_outcome):
        site, _ = pooled_outcome
        tracker = AccuracyTracker()
        server = MDBSServer(accuracy=tracker)
        server.register_agent(MDBSAgent(site.database))
        # Warm the pool so the agent reports a definite hit state.
        site.database.execute("select a1 from R1 where a1 >= 0")
        hit_state = server.agents[site.name].buffer_hit_state()
        assert hit_state in ("cold", "warm", "hot")
        plan = GlobalPlan(
            query=None,
            components=None,
            join_site="left",
            estimates=[
                CostEstimate("left select", 1.0, "G1", 0, site.name),
                CostEstimate("ship", 0.2),  # no model: skipped
            ],
        )
        execution = GlobalExecution(
            plan=plan,
            column_names=(),
            rows=[],
            steps=[StepTiming("left select", 1.2), StepTiming("ship", 0.2)],
        )
        server._record_accuracy(plan, execution)
        assert tracker.keys() == [(site.name, "G1", (0, hit_state))]

    def test_server_keeps_plain_key_without_pool(self):
        site = make_site("plain_site3", scale=0.008, seed=94)
        tracker = AccuracyTracker()
        server = MDBSServer(accuracy=tracker)
        server.register_agent(MDBSAgent(site.database))
        plan = GlobalPlan(
            query=None,
            components=None,
            join_site="left",
            estimates=[CostEstimate("left select", 1.0, "G1", 3, site.name)],
        )
        execution = GlobalExecution(
            plan=plan, column_names=(), rows=[],
            steps=[StepTiming("left select", 1.1)],
        )
        server._record_accuracy(plan, execution)
        assert tracker.keys() == [(site.name, "G1", 3)]


class TestAgentSurface:
    def test_agent_exposes_hit_rate_and_state(self, pooled_outcome):
        site, _ = pooled_outcome
        agent = MDBSAgent(site.database)
        assert agent.buffer_hit_state() in ("cold", "warm", "hot")
        assert 0.0 <= agent.buffer_hit_rate() <= 1.0

    def test_agent_without_pool_reports_none(self):
        site = make_site("plain_site4", scale=0.008, seed=95)
        agent = MDBSAgent(site.database)
        assert agent.buffer_hit_rate() is None
        assert agent.buffer_hit_state() is None


class TestTelemetry:
    def test_execution_exports_buffer_gauges(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            site = make_site(
                "gauge_site", scale=0.008, seed=96, buffer_pages=64
            )
            site.database.execute("select a1 from R1 where a1 >= 0")
            site.database.execute("select a1 from R1 where a1 >= 0")
            counters = registry.counters()
            assert counters["engine.pages.logical"] > 0
            assert counters["engine.pages.buffer_hits"] > 0
            assert 0.0 <= registry.gauge_value("engine.buffer.hit_rate") <= 1.0
            assert registry.gauge_value("engine.buffer.resident_pages") >= 1
        finally:
            obs.set_registry(previous)
