"""Cost-model export schema versioning: v3 round trip, v2/v1 back-compat.

Schema v3 adds the pluggable model-form provenance (``model_form``,
``online_updates``, ``update_log``).  Importers must still read the v2
payloads shipped before the strategy layer (form defaults to the paper's
batch OLS) and the legacy flat v1 ``{"site/label": model_dict}`` format,
and must reject versions they do not understand.
"""

import json

import pytest

from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.core.strategy import DEFAULT_STRATEGY, RLSStrategy
from repro.mdbs.catalog import (
    MODEL_SCHEMA_VERSION,
    SUPPORTED_MODEL_SCHEMA_VERSIONS,
    GlobalCatalog,
    GlobalCatalogError,
)

from ..core.synthetic import stepped_sample

V3_ONLY_PROVENANCE_KEYS = ("model_form", "online_updates", "update_log")


def make_model(label="G1", strategy=None, seed=1):
    X, y, probing = stepped_sample(true_states=2, n=100, seed=seed)
    fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
    model = MultiStateCostModel.from_fit(fit, label, "unary", "iupma")
    if strategy is not None:
        model = strategy.finalize(model, fit)
    return model


def populated_catalog():
    catalog = GlobalCatalog()
    catalog.register_site("s1")
    catalog.register_site("s2")
    catalog.store_cost_model("s1", make_model("G1"))
    catalog.store_cost_model("s1", make_model("G3", seed=4))
    catalog.store_cost_model("s2", make_model("G1", strategy=RLSStrategy(), seed=2))
    return catalog


class TestV3RoundTrip:
    def test_constants(self):
        assert MODEL_SCHEMA_VERSION == 3
        assert SUPPORTED_MODEL_SCHEMA_VERSIONS == (2, 3)

    def test_export_import_reexport_is_identical(self):
        catalog = populated_catalog()
        first = catalog.export_models()
        assert first["schema_version"] == 3

        fresh = GlobalCatalog()
        assert fresh.import_models(first) == 3
        second = fresh.export_models()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_form_provenance_round_trips(self):
        catalog = populated_catalog()
        version = catalog.registry.active_version("s2", "G1")
        catalog.registry.record_online_update(
            "s2", "G1", version.version, {"round": 1, "error": 0.5}
        )
        catalog.registry.record_online_update(
            "s2", "G1", version.version, {"round": 2, "error": 0.25}
        )

        fresh = GlobalCatalog()
        fresh.import_models(json.loads(json.dumps(catalog.export_models())))
        restored = fresh.registry.active_version("s2", "G1").provenance
        assert restored.model_form == "mlr.rls"
        assert restored.online_updates == 2
        assert restored.update_log == (
            {"round": 1, "error": 0.5},
            {"round": 2, "error": 0.25},
        )
        # The OLS models carry the default form without metadata noise.
        assert fresh.registry.active_version("s1", "G1").provenance.model_form == (
            DEFAULT_STRATEGY
        )

    def test_update_log_is_capped_but_count_is_not(self):
        catalog = populated_catalog()
        version = catalog.registry.active_version("s2", "G1").version
        for i in range(10):
            catalog.registry.record_online_update(
                "s2", "G1", version, {"round": i}, max_log=4
            )
        provenance = catalog.registry.active_version("s2", "G1").provenance
        assert provenance.online_updates == 10
        assert [e["round"] for e in provenance.update_log] == [6, 7, 8, 9]


class TestV2BackCompat:
    def v2_payload(self):
        """A faithful pre-strategy export: v3 minus the form fields."""
        payload = json.loads(json.dumps(populated_catalog().export_models()))
        payload["schema_version"] = 2
        for record in payload["models"].values():
            for version in record["versions"]:
                for key in V3_ONLY_PROVENANCE_KEYS:
                    version["provenance"].pop(key, None)
                version["model"].get("metadata", {}).pop("model_form", None)
                version["model"].get("metadata", {}).pop("strategy_params", None)
        return payload

    def test_v2_imports_with_form_defaults(self):
        fresh = GlobalCatalog()
        assert fresh.import_models(self.v2_payload()) == 3
        for site, label in fresh.registry.keys():
            provenance = fresh.registry.active_version(site, label).provenance
            assert provenance.model_form == DEFAULT_STRATEGY
            assert provenance.online_updates == 0
            assert provenance.update_log == ()

    def test_v2_models_still_predict(self):
        fresh = GlobalCatalog()
        fresh.import_models(self.v2_payload())
        model = fresh.cost_model("s1", "G1")
        assert model.predict({"x": 10.0}, 0.5) > 0.0


class TestV1BackCompat:
    def test_legacy_flat_payload(self):
        model = make_model("G1")
        fresh = GlobalCatalog()
        loaded = fresh.import_models(
            json.loads(json.dumps({"s1/G1": model.to_dict()}))
        )
        assert loaded == 1
        assert "s1" in fresh.sites
        restored = fresh.cost_model("s1", "G1")
        assert restored.predict({"x": 3.0}, 0.4) == pytest.approx(
            model.predict({"x": 3.0}, 0.4)
        )
        provenance = fresh.registry.active_version("s1", "G1").provenance
        assert provenance.model_form == DEFAULT_STRATEGY


class TestRejection:
    @pytest.mark.parametrize("version", [0, 1, 4, 99, "3"])
    def test_unknown_schema_version_rejected(self, version):
        fresh = GlobalCatalog()
        with pytest.raises(GlobalCatalogError, match="schema_version"):
            fresh.import_models({"schema_version": version, "models": {}})
