"""Unit tests for global queries and decomposition."""

import pytest

from repro.engine.errors import QueryError
from repro.engine.predicate import Comparison
from repro.mdbs.gquery import GlobalJoinQuery, decompose

LEFT_COLUMNS = ("a", "b", "c")
RIGHT_COLUMNS = ("x", "y", "z")


def make_query(**kwargs):
    defaults = dict(
        left_site="s1",
        left_table="t1",
        right_site="s2",
        right_table="t2",
        left_join_column="b",
        right_join_column="y",
    )
    defaults.update(kwargs)
    return GlobalJoinQuery(**defaults)


class TestGlobalJoinQuery:
    def test_same_table_same_site_rejected(self):
        with pytest.raises(QueryError):
            make_query(right_site="s1", right_table="t1")

    def test_same_table_name_different_sites_allowed(self):
        query = make_query(right_table="t1")
        assert query.right_table == "t1"

    def test_unqualified_output_column_rejected(self):
        with pytest.raises(QueryError):
            make_query(columns=("a",))

    def test_foreign_table_output_column_rejected(self):
        with pytest.raises(QueryError):
            make_query(columns=("t9.a",))

    def test_requested_columns_split_by_side(self):
        query = make_query(columns=("t1.a", "t2.x", "t1.c"))
        assert query.requested_columns("left") == ("a", "c")
        assert query.requested_columns("right") == ("x",)

    def test_str_mentions_sites(self):
        text = str(make_query())
        assert "s1:t1" in text and "s2:t2" in text


class TestDecompose:
    def test_projection_plus_join_column(self):
        query = make_query(columns=("t1.a", "t2.x"))
        components = decompose(query, LEFT_COLUMNS, RIGHT_COLUMNS)
        assert components.left.columns == ("a", "b")  # join column appended
        assert components.right.columns == ("x", "y")
        assert components.left.columns[components.left_join_position] == "b"
        assert components.right.columns[components.right_join_position] == "y"

    def test_join_column_already_requested_not_duplicated(self):
        query = make_query(columns=("t1.b", "t2.y"))
        components = decompose(query, LEFT_COLUMNS, RIGHT_COLUMNS)
        assert components.left.columns == ("b",)
        assert components.left_join_position == 0

    def test_star_ships_everything(self):
        query = make_query()
        components = decompose(query, LEFT_COLUMNS, RIGHT_COLUMNS)
        assert components.left.columns == LEFT_COLUMNS
        assert components.right.columns == RIGHT_COLUMNS

    def test_predicates_attached_to_components(self):
        query = make_query(
            left_predicate=Comparison("a", "<", 5),
            right_predicate=Comparison("z", ">", 1),
        )
        components = decompose(query, LEFT_COLUMNS, RIGHT_COLUMNS)
        assert components.left.predicate == Comparison("a", "<", 5)
        assert components.right.predicate == Comparison("z", ">", 1)

    def test_component_tables_match(self):
        components = decompose(make_query(), LEFT_COLUMNS, RIGHT_COLUMNS)
        assert components.left.table == "t1"
        assert components.right.table == "t2"
