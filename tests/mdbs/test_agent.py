"""Unit tests for the MDBS agent."""

import pytest

from repro.core.classification import G1
from repro.core.probing import ProbingCostEstimator
from repro.engine.errors import CatalogError
from repro.engine.query import SelectQuery
from repro.mdbs.agent import MDBSAgent


@pytest.fixture
def agent(dynamic_database):
    return MDBSAgent(dynamic_database)


class TestInterface:
    def test_execute_passthrough(self, agent):
        result = agent.execute("select a from t1 where b < 50")
        assert result.cardinality > 0

    def test_classify(self, agent):
        assert agent.classify("select a from t1 where b < 50") is G1

    def test_site_name(self, agent):
        assert agent.site == "dyn_db"


class TestProbing:
    def test_observed_probing_cost(self, agent):
        assert agent.observed_probing_cost() > 0

    def test_estimated_requires_calibration(self, agent):
        with pytest.raises(RuntimeError):
            agent.estimated_probing_cost()

    def test_calibrate_then_estimate(self, agent):
        estimator = agent.calibrate_estimator(samples=40, interval_seconds=45.0)
        assert isinstance(estimator, ProbingCostEstimator)
        assert agent.estimated_probing_cost() >= 0 or True  # numeric, no raise
        assert isinstance(agent.estimated_probing_cost(), float)

    def test_probing_cost_prefers_estimated_when_asked(self, agent):
        agent.calibrate_estimator(samples=40, interval_seconds=45.0)
        # Both paths produce plausible costs for the same environment.
        estimated = agent.probing_cost(prefer_estimated=True)
        observed = agent.probing_cost(prefer_estimated=False)
        assert estimated == pytest.approx(observed, abs=max(1.0, observed))

    def test_prefer_estimated_falls_back_without_estimator(self, agent):
        assert agent.probing_cost(prefer_estimated=True) > 0


class TestFactsExport:
    def test_export_covers_all_tables(self, agent):
        facts = agent.export_table_facts()
        assert {f.name for f in facts} == {"t1"}
        (f,) = facts
        assert f.cardinality == 400
        assert f.tuple_length == 16
        assert f.column_stats["a"][0] is not None  # min
        assert f.site == "dyn_db"

    def test_export_includes_indexes(self, small_database):
        agent = MDBSAgent(small_database)
        facts = {f.name: f for f in agent.export_table_facts()}
        assert facts["t1"].indexed_columns == {"a": "nonclustered"}
        assert facts["t2"].indexed_columns == {"b": "clustered"}
        assert facts["t2"].clustered_on == "b"


class TestTempTables:
    def test_create_query_drop(self, agent):
        agent.create_temp_table("_tmp", ("x", "y"), (8, 8), [(1, 2), (3, 4)])
        result = agent.execute(SelectQuery("_tmp"))
        assert sorted(result.result.rows) == [(1, 2), (3, 4)]
        agent.drop_temp_table("_tmp")
        with pytest.raises(CatalogError):
            agent.execute(SelectQuery("_tmp"))

    def test_recreate_replaces(self, agent):
        agent.create_temp_table("_tmp", ("x",), (8,), [(1,)])
        agent.create_temp_table("_tmp", ("x",), (8,), [(2,), (3,)])
        result = agent.execute(SelectQuery("_tmp"))
        assert result.cardinality == 2
        agent.drop_temp_table("_tmp")

    def test_empty_shipment_allowed(self, agent):
        agent.create_temp_table("_tmp", ("x",), (8,), [])
        assert agent.execute(SelectQuery("_tmp")).cardinality == 0
        agent.drop_temp_table("_tmp")

    def test_types_inferred_from_first_row(self, agent):
        agent.create_temp_table("_tmp", ("x", "s"), (8, 16), [(1, "a")])
        table = agent.database.catalog.table("_tmp")
        assert table.schema.column("x").dtype.value == "int"
        assert table.schema.column("s").dtype.value == "str"
        agent.drop_temp_table("_tmp")
