"""Unit tests for the global query optimizer."""

import pytest

from repro import obs
from repro.core.classification import class_by_label, classify
from repro.engine.predicate import Comparison
from repro.engine.query import SelectQuery
from repro.mdbs.catalog import GlobalCatalog, GlobalCatalogError
from repro.mdbs.gquery import GlobalJoinQuery
from repro.mdbs.optimizer import (
    GlobalQueryOptimizer,
    estimate_join_variables,
    estimate_unary_variables,
    facts_to_statistics,
)


@pytest.fixture
def globalq():
    return GlobalJoinQuery(
        "oracle_site",
        "R2",
        "db2_site",
        "R3",
        "a4",
        "a4",
        ("R2.a1", "R3.a2"),
        left_predicate=Comparison("a3", "<", 500),
        right_predicate=Comparison("a7", ">", 25000),
    )


class TestFactsConversion:
    def test_statistics_round_trip(self, mini_mdbs):
        server, sites = mini_mdbs
        facts = server.catalog.table("oracle_site", "R1")
        stats = facts_to_statistics(facts)
        real = sites["oracle_site"].database.catalog.table("R1").statistics
        assert stats.cardinality == real.cardinality
        assert stats.column("a1").minimum == real.column("a1").minimum
        assert stats.column("a1").distinct_count == real.column("a1").distinct_count


class TestVariableEstimation:
    def test_unary_estimates_close_to_actual(self, mini_mdbs):
        server, sites = mini_mdbs
        site = sites["oracle_site"]
        query = SelectQuery("R2", ("a1", "a5"), Comparison("a3", "<", 300))
        query_class = classify(site.database, query)
        facts = server.catalog.table("oracle_site", "R2")
        estimated = estimate_unary_variables(facts, query, query_class)
        actual = site.database.execute(query)
        assert estimated["no"] == actual.infos[0].operand_cardinality
        assert estimated["nr"] == pytest.approx(actual.result.cardinality, rel=0.25)
        assert estimated["lo"] == facts.tuple_length
        assert estimated["lr"] == sum(
            facts.column_widths[c] for c in ("a1", "a5")
        )

    def test_index_class_reduces_intermediate(self, mini_mdbs):
        server, sites = mini_mdbs
        site = sites["oracle_site"]
        table = site.database.catalog.table("R2")
        cut = int(table.statistics.column("a1").maximum * 0.05)
        query = SelectQuery("R2", ("a1",), Comparison("a1", "<", cut))
        query_class = classify(site.database, query)
        assert query_class.label == "G2"
        facts = server.catalog.table("oracle_site", "R2")
        estimated = estimate_unary_variables(facts, query, query_class)
        assert estimated["ni"] < estimated["no"]

    def test_join_variable_consistency(self):
        values = estimate_join_variables(100.0, 200.0, 16.0, 24.0, 50, 80)
        assert values["nixni"] == 100.0 * 200.0
        assert values["nr"] == pytest.approx(100.0 * 200.0 / 80.0)
        assert values["lr"] == 40.0
        assert values["tl1"] == 1600.0

    def test_join_ndv_clamped_to_cardinality(self):
        # ndv larger than the intermediate cannot inflate the result.
        values = estimate_join_variables(10.0, 10.0, 8.0, 8.0, 1000, 1000)
        assert values["nr"] == pytest.approx(10.0)


class TestPlans:
    def test_two_candidates_enumerated(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        plans = server.optimizer().plans(globalq)
        assert {p.join_site for p in plans} == {"left", "right"}

    def test_each_plan_has_four_estimates(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        for plan in server.optimizer().plans(globalq):
            assert len(plan.estimates) == 4
            assert plan.estimated_seconds >= 0.0
            assert plan.describe()

    def test_choose_picks_minimum(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        optimizer = server.optimizer()
        plans = optimizer.plans(globalq)
        chosen = optimizer.choose(globalq)
        assert chosen.estimated_seconds <= min(p.estimated_seconds for p in plans) * 1.5

    def test_estimates_cite_cost_models(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        plan = server.optimize(globalq)
        labels = {e.class_label for e in plan.estimates if e.class_label}
        assert labels <= {"G1", "G2", "G3", "GC"}
        assert any(e.class_label == "G3" for e in plan.estimates)  # the join


class TestClassFallback:
    def test_missing_class_model_degrades_to_same_family(self, mini_mdbs):
        """mini_mdbs has only G1/G3 models; a G2 query must not abort the
        estimation — the optimizer stands in a same-family (unary) model."""
        server, sites = mini_mdbs
        site = sites["oracle_site"]
        table = site.database.catalog.table("R2")
        cut = int(table.statistics.column("a1").maximum * 0.05)
        query = SelectQuery("R2", ("a1",), Comparison("a1", "<", cut))
        assert classify(site.database, query).label == "G2"
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            estimate, _ = server.optimizer().estimate_select("oracle_site", query)
        finally:
            obs.set_registry(previous)
        assert estimate.class_label == "G2"  # reported as classified
        assert estimate.seconds >= 0.0
        assert registry.counter_value("mdbs.optimizer.class_fallback") == 1.0

    def test_no_same_family_candidate_reraises(self, mini_mdbs):
        server, _ = mini_mdbs
        catalog = GlobalCatalog()
        catalog.register_site("oracle_site")
        catalog.store_cost_model(
            "oracle_site", server.catalog.cost_model("oracle_site", "G1")
        )
        optimizer = GlobalQueryOptimizer(catalog, server.agents, server.network)
        # Only a unary model exists; a join-family class has no stand-in.
        with pytest.raises(GlobalCatalogError):
            optimizer._model_for("oracle_site", class_by_label("G3"))


class TestEstimatedProbingPath:
    def test_optimizer_with_estimated_probing(self, mini_mdbs, globalq):
        """End-to-end: the optimizer can resolve contention states from
        eq.-(2)-estimated probing costs instead of executing the probe."""
        server, sites = mini_mdbs
        for agent in server.agents.values():
            agent.calibrate_estimator(samples=40, interval_seconds=45.0)
        optimizer = server.optimizer(prefer_estimated_probing=True)
        plan = optimizer.choose(globalq)
        assert plan.join_site in ("left", "right")
        execution = server.execute(globalq, plan)
        ratio = max(
            execution.observed_seconds / max(execution.estimated_seconds, 1e-9),
            execution.estimated_seconds / max(execution.observed_seconds, 1e-9),
        )
        assert ratio < 10.0
