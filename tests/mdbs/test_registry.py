"""Unit tests for the versioned cost-model registry."""

import pytest

from repro import obs
from repro.core.builder import BuilderConfig
from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.mdbs.registry import (
    CostModelRegistry,
    CostModelRegistryError,
    ModelProvenance,
    ModelVersion,
    config_fingerprint,
    describe_registry,
)

from ..core.synthetic import stepped_sample


def make_model(label="G1", seed=1):
    X, y, probing = stepped_sample(true_states=2, n=100, seed=seed)
    fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
    return MultiStateCostModel.from_fit(fit, label, "unary", "iupma")


@pytest.fixture
def registry():
    return CostModelRegistry()


class TestPublish:
    def test_versions_number_from_one(self, registry):
        v1 = registry.publish("s1", make_model())
        v2 = registry.publish("s1", make_model(seed=2))
        assert (v1.version, v2.version) == (1, 2)
        assert registry.active_version("s1", "G1").version == 2

    def test_publish_without_activation(self, registry):
        registry.publish("s1", make_model())
        shadow = registry.publish("s1", make_model(seed=2), activate=False)
        assert shadow.version == 2
        assert registry.active_version("s1", "G1").version == 1

    def test_default_provenance_from_model(self, registry):
        model = make_model()
        entry = registry.publish("s1", model)
        assert entry.provenance.algorithm == "iupma"
        assert entry.provenance.sample_size == model.n_observations
        assert entry.provenance.r_squared == pytest.approx(model.r_squared)
        assert entry.provenance.standard_error == pytest.approx(model.standard_error)

    def test_drift_trigger_survives_provenance_round_trip(self, registry):
        model = make_model()
        trigger = "drift[probe_escape] s1/G1 @t=120: 5/8 probes out of range"
        entry = registry.publish(
            "s1", model, ModelProvenance.from_model(model, trigger=trigger)
        )
        assert entry.provenance.trigger == trigger
        payload = entry.provenance.to_dict()
        assert payload["trigger"] == trigger
        assert ModelProvenance.from_dict(payload) == entry.provenance
        # Ordinary §2 maintenance carries no trigger — and a payload
        # written before the field existed still round-trips.
        plain = ModelProvenance.from_model(model)
        assert plain.trigger is None
        legacy = plain.to_dict()
        legacy.pop("trigger", None)
        assert ModelProvenance.from_dict(legacy).trigger is None

    def test_keys_are_site_class_pairs(self, registry):
        registry.publish("s1", make_model("G1"))
        registry.publish("s1", make_model("G3"))
        registry.publish("s2", make_model("G1"))
        assert registry.keys() == [("s1", "G1"), ("s1", "G3"), ("s2", "G1")]
        assert len(registry) == 3

    def test_missing_model_raises(self, registry):
        with pytest.raises(CostModelRegistryError):
            registry.active_model("s1", "G1")
        assert not registry.has_model("s1", "G1")


class TestActivateRollback:
    def test_rollback_restores_previously_active(self, registry):
        registry.publish("s1", make_model(seed=1))
        registry.publish("s1", make_model(seed=2))
        restored = registry.rollback("s1", "G1")
        assert restored.version == 1
        assert registry.active_version("s1", "G1").version == 1

    def test_rollback_follows_activation_history(self, registry):
        registry.publish("s1", make_model(seed=1))
        registry.publish("s1", make_model(seed=2))
        registry.publish("s1", make_model(seed=3))
        registry.activate("s1", "G1", 1)
        assert registry.rollback("s1", "G1").version == 3
        assert registry.rollback("s1", "G1").version == 2

    def test_rollback_without_history_errors_at_v1(self, registry):
        registry.publish("s1", make_model())
        with pytest.raises(CostModelRegistryError):
            registry.rollback("s1", "G1")

    def test_activate_unknown_version_rejected(self, registry):
        registry.publish("s1", make_model())
        with pytest.raises(CostModelRegistryError):
            registry.activate("s1", "G1", 7)

    def test_reactivating_same_version_does_not_pollute_history(self, registry):
        registry.publish("s1", make_model(seed=1))
        registry.publish("s1", make_model(seed=2))
        registry.activate("s1", "G1", 2)  # no-op re-activation
        assert registry.rollback("s1", "G1").version == 1


class TestPersistence:
    def test_export_import_round_trip(self, registry):
        registry.publish(
            "s1",
            make_model(),
            ModelProvenance(
                derived_at=42.0,
                algorithm="icma",
                sample_size=77,
                r_squared=0.98,
                standard_error=0.02,
                config_hash="deadbeef",
            ),
        )
        registry.publish("s1", make_model(seed=2))
        registry.activate("s1", "G1", 1)

        fresh = CostModelRegistry()
        assert fresh.import_payload(registry.export()) == 1
        assert fresh.active_version("s1", "G1").version == 1
        history = fresh.history("s1", "G1")
        assert [v.version for v in history] == [1, 2]
        assert history[0].provenance == ModelProvenance(
            derived_at=42.0,
            algorithm="icma",
            sample_size=77,
            r_squared=0.98,
            standard_error=0.02,
            config_hash="deadbeef",
        )

    def test_export_is_json_compatible(self, registry):
        import json

        registry.publish("s1", make_model())
        json.dumps(registry.export())

    def test_imported_payload_without_active_serves_latest(self, registry):
        registry.publish("s1", make_model())
        payload = registry.export()
        payload["s1/G1"]["active"] = None
        fresh = CostModelRegistry()
        fresh.import_payload(payload)
        assert fresh.active_version("s1", "G1").version == 1


class TestObservability:
    def test_gauges_track_registry_size(self, registry):
        reg = obs.MetricsRegistry()
        previous = obs.set_registry(reg)
        try:
            registry.publish("s1", make_model("G1"))
            registry.publish("s1", make_model("G1", seed=2))
            registry.publish("s1", make_model("G3"))
        finally:
            obs.set_registry(previous)
        assert reg.gauge_value("mdbs.registry.models") == 2
        assert reg.gauge_value("mdbs.registry.versions") == 3
        assert reg.counter_value("mdbs.registry.published") == 3


class TestMisc:
    def test_config_fingerprint_stable_and_sensitive(self):
        a = BuilderConfig()
        b = BuilderConfig()
        assert config_fingerprint(a) == config_fingerprint(b)
        b.sizing_states = 9
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_iteration_and_describe(self, registry):
        registry.publish("s1", make_model("G1"))
        registry.publish("s2", make_model("G3", seed=2))
        entries = list(registry)
        assert all(isinstance(e, ModelVersion) for e in entries)
        listing = describe_registry(registry)
        assert "s1/G1" in listing and "s2/G3" in listing

    def test_drop_site(self, registry):
        registry.publish("s1", make_model("G1"))
        registry.publish("s2", make_model("G1", seed=2))
        registry.drop_site("s1")
        assert registry.keys() == [("s2", "G1")]
        with pytest.raises(CostModelRegistryError):
            registry.active_model("s1", "G1")
