"""Unit tests for the global catalog."""

import pytest

from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.mdbs.catalog import GlobalCatalog, GlobalCatalogError, TableFacts

from ..core.synthetic import stepped_sample


def make_model(label="G1"):
    X, y, probing = stepped_sample(true_states=2, n=100, seed=1)
    fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
    return MultiStateCostModel.from_fit(fit, label, "unary", "iupma")


def make_facts(site="s1", name="t1"):
    return TableFacts(
        site=site,
        name=name,
        cardinality=100,
        tuple_length=24,
        column_widths={"a": 8, "b": 8, "c": 8},
        column_stats={"a": (0, 99, 50)},
        indexed_columns={"a": "nonclustered"},
    )


@pytest.fixture
def catalog():
    cat = GlobalCatalog()
    cat.register_site("s1")
    cat.register_site("s2")
    return cat


class TestSites:
    def test_registration_idempotent(self, catalog):
        catalog.register_site("s1")
        assert catalog.sites == ("s1", "s2")

    def test_unknown_site_rejected(self, catalog):
        with pytest.raises(GlobalCatalogError):
            catalog.register_table(make_facts(site="s9"))


class TestTables:
    def test_register_and_lookup(self, catalog):
        catalog.register_table(make_facts())
        assert catalog.table("s1", "t1").cardinality == 100

    def test_missing_table_rejected(self, catalog):
        with pytest.raises(GlobalCatalogError):
            catalog.table("s1", "nope")

    def test_locate_across_sites(self, catalog):
        catalog.register_table(make_facts("s1", "t1"))
        catalog.register_table(make_facts("s2", "t1"))
        catalog.register_table(make_facts("s2", "t2"))
        assert catalog.locate("t1") == ["s1", "s2"]
        assert catalog.locate("t2") == ["s2"]
        assert catalog.locate("t9") == []

    def test_tables_at_site(self, catalog):
        catalog.register_table(make_facts("s1", "t1"))
        catalog.register_table(make_facts("s1", "t2"))
        assert [f.name for f in catalog.tables_at("s1")] == ["t1", "t2"]
        assert catalog.tables_at("s2") == []


class TestCostModels:
    def test_store_and_fetch(self, catalog):
        model = make_model()
        catalog.store_cost_model("s1", model)
        assert catalog.cost_model("s1", "G1") is model
        assert catalog.has_cost_model("s1", "G1")
        assert not catalog.has_cost_model("s2", "G1")

    def test_missing_model_rejected(self, catalog):
        with pytest.raises(GlobalCatalogError):
            catalog.cost_model("s1", "G1")

    def test_models_at_site(self, catalog):
        catalog.store_cost_model("s1", make_model("G1"))
        catalog.store_cost_model("s1", make_model("G3"))
        assert [m.class_label for m in catalog.cost_models_at("s1")] == ["G1", "G3"]

    def test_export_import_round_trip(self, catalog):
        model = make_model()
        catalog.store_cost_model("s1", model)
        payload = catalog.export_models()
        fresh = GlobalCatalog()
        fresh.import_models(payload)
        restored = fresh.cost_model("s1", "G1")
        assert restored.predict({"x": 10.0}, 0.5) == pytest.approx(
            model.predict({"x": 10.0}, 0.5)
        )

    def test_export_is_json_compatible(self, catalog):
        import json

        catalog.store_cost_model("s1", make_model())
        json.dumps(catalog.export_models())


class TestFilePersistence:
    def test_save_load_round_trip(self, catalog, tmp_path):
        model = make_model()
        catalog.store_cost_model("s1", model)
        path = tmp_path / "models.json"
        catalog.save_models(path)

        fresh = GlobalCatalog()
        assert fresh.load_models(path) == 1
        restored = fresh.cost_model("s1", "G1")
        assert restored.predict({"x": 4.0}, 0.3) == pytest.approx(
            model.predict({"x": 4.0}, 0.3)
        )
        # Prediction intervals survive the file round trip too.
        assert restored.predict_with_interval({"x": 4.0}, 0.3) == pytest.approx(
            model.predict_with_interval({"x": 4.0}, 0.3)
        )

    def test_saved_file_is_readable_json(self, catalog, tmp_path):
        import json

        catalog.store_cost_model("s2", make_model("G3"))
        path = tmp_path / "models.json"
        catalog.save_models(path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 3
        assert "s2/G3" in payload["models"]

    def test_legacy_flat_payload_still_loads(self, catalog, tmp_path):
        import json

        model = make_model("G1")
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"s1/G1": model.to_dict()}))
        fresh = GlobalCatalog()
        assert fresh.load_models(path) == 1
        assert fresh.cost_model("s1", "G1").class_label == "G1"

    def test_unknown_schema_version_rejected(self, catalog, tmp_path):
        import json

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": 99, "models": {}}))
        fresh = GlobalCatalog()
        with pytest.raises(GlobalCatalogError, match="schema_version"):
            fresh.load_models(path)

    def test_versions_round_trip_with_provenance(self, catalog, tmp_path):
        from repro.mdbs.registry import ModelProvenance

        v1 = catalog.publish_cost_model(
            "s1",
            make_model("G1"),
            ModelProvenance(
                derived_at=120.0,
                algorithm="iupma",
                sample_size=100,
                r_squared=0.99,
                standard_error=0.01,
                config_hash="abc123",
            ),
        )
        v2 = catalog.publish_cost_model("s1", make_model("G1"))
        assert (v1.version, v2.version) == (1, 2)
        path = tmp_path / "versions.json"
        catalog.save_models(path)

        fresh = GlobalCatalog()
        assert fresh.load_models(path) == 1
        history = fresh.cost_model_history("s1", "G1")
        assert [v.version for v in history] == [1, 2]
        assert history[0].provenance.derived_at == 120.0
        assert history[0].provenance.config_hash == "abc123"
        assert history[0].provenance.sample_size == 100
        # The active pointer round-trips: v2 is served.
        assert fresh.registry.active_version("s1", "G1").version == 2
        # Rollback after a reload still finds the earlier version.
        fresh.rollback_cost_model("s1", "G1")
        assert fresh.registry.active_version("s1", "G1").version == 1
