"""Unit tests for multi-way global queries."""

import pytest

from repro.engine.errors import QueryError
from repro.engine.predicate import Comparison, TRUE
from repro.mdbs.multiway import (
    JoinLink,
    MultiJoinQuery,
    MultiwayExecutor,
    MultiwayOptimizer,
    Operand,
)


def make_query(columns=("R1.a1", "R2.a2", "R4.a5")):
    return MultiJoinQuery(
        operands=(
            Operand("oracle_site", "R1", Comparison("a3", "<", 700)),
            Operand("db2_site", "R2", TRUE),
            Operand("oracle_site", "R4", Comparison("a7", ">", 10000)),
        ),
        links=(
            JoinLink("R1", "a4", "R2", "a4"),
            JoinLink("R2", "a4", "R4", "a4"),
        ),
        columns=columns,
    )


class TestValidation:
    def test_operand_link_count_mismatch(self):
        with pytest.raises(QueryError):
            MultiJoinQuery(
                operands=(Operand("s", "A"), Operand("s", "B")),
                links=(),
            )

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryError):
            MultiJoinQuery(
                operands=(Operand("s", "A"), Operand("t", "A")),
                links=(JoinLink("A", "x", "A", "x"),),
            )

    def test_link_must_introduce_next_operand(self):
        with pytest.raises(QueryError):
            MultiJoinQuery(
                operands=(Operand("s", "A"), Operand("s", "B"), Operand("s", "C")),
                links=(
                    JoinLink("A", "x", "C", "x"),  # skips B
                    JoinLink("A", "x", "B", "x"),
                ),
            )

    def test_link_cannot_reference_future_table(self):
        with pytest.raises(QueryError):
            MultiJoinQuery(
                operands=(Operand("s", "A"), Operand("s", "B"), Operand("s", "C")),
                links=(
                    JoinLink("C", "x", "B", "x"),  # C not joined yet
                    JoinLink("B", "x", "C", "x"),
                ),
            )

    def test_unqualified_output_column_rejected(self):
        with pytest.raises(QueryError):
            make_query(columns=("a1",))

    def test_two_operands_minimum(self):
        with pytest.raises(QueryError):
            MultiJoinQuery(operands=(Operand("s", "A"),), links=())

    def test_needed_columns_include_join_keys(self):
        query = make_query()
        needed = query.needed_columns("R2", ("a1", "a2", "a4"))
        assert "a2" in needed  # requested output
        assert "a4" in needed  # join key for both links


class TestPlanning:
    def test_plan_structure(self, mini_mdbs):
        server, _ = mini_mdbs
        plan = MultiwayOptimizer(server).plan(make_query())
        assert len(plan.select_estimates) == 3
        assert len(plan.steps) == 2
        assert plan.steps[0].introduces == "R2"
        assert plan.steps[1].introduces == "R4"
        assert plan.estimated_seconds > 0
        assert "multi-way plan" in plan.describe()

    def test_join_sites_are_registered_sites(self, mini_mdbs):
        server, _ = mini_mdbs
        plan = MultiwayOptimizer(server).plan(make_query())
        for step in plan.steps:
            assert step.join_site in server.catalog.sites


class TestExecution:
    def reference_rows(self, sites, query):
        """Naive chain join over the raw tables."""
        tables = {}
        for operand in query.operands:
            table = sites[operand.site].database.catalog.table(operand.table)
            rows = [
                r for r in table if operand.predicate.evaluate(r, table.schema)
            ]
            tables[operand.table] = (table.schema, rows)

        first = query.operands[0].table
        schema, rows = tables[first]
        acc = [
            {f"{first}.{c}": r[schema.position(c)] for c in schema.column_names}
            for r in rows
        ]
        for link in query.links:
            schema, rows = tables[link.right_table]
            joined = []
            for item in acc:
                for r in rows:
                    if item[f"{link.left_table}.{link.left_column}"] == r[
                        schema.position(link.right_column)
                    ]:
                        merged = dict(item)
                        merged.update(
                            {
                                f"{link.right_table}.{c}": r[schema.position(c)]
                                for c in schema.column_names
                            }
                        )
                        joined.append(merged)
            acc = joined
        return sorted(tuple(item[c] for c in query.columns) for item in acc)

    def test_result_matches_naive_chain_join(self, mini_mdbs):
        server, sites = mini_mdbs
        query = make_query()
        execution = MultiwayExecutor(server).execute(query)
        assert sorted(execution.rows) == self.reference_rows(sites, query)
        assert execution.column_names == query.columns

    def test_steps_cover_all_work(self, mini_mdbs):
        server, _ = mini_mdbs
        execution = MultiwayExecutor(server).execute(make_query())
        text = " | ".join(s.description for s in execution.steps)
        assert text.count("select") == 3
        assert text.count("ship") == 2
        assert text.count("join") == 2
        assert execution.observed_seconds > 0

    def test_estimate_within_order_of_magnitude(self, mini_mdbs):
        server, _ = mini_mdbs
        execution = MultiwayExecutor(server).execute(make_query())
        ratio = max(
            execution.observed_seconds / max(execution.estimated_seconds, 1e-9),
            execution.estimated_seconds / max(execution.observed_seconds, 1e-9),
        )
        assert ratio < 10.0

    def test_temp_tables_cleaned_up(self, mini_mdbs):
        server, sites = mini_mdbs
        MultiwayExecutor(server).execute(make_query())
        for site in sites.values():
            assert not site.database.catalog.has_table("_m_acc")
            assert not site.database.catalog.has_table("_m_next")

    def test_star_projection(self, mini_mdbs):
        server, _ = mini_mdbs
        query = MultiJoinQuery(
            operands=(
                Operand("oracle_site", "R1", Comparison("a3", "<", 300)),
                Operand("db2_site", "R2", Comparison("a7", ">", 30000)),
            ),
            links=(JoinLink("R1", "a4", "R2", "a4"),),
        )
        execution = MultiwayExecutor(server).execute(query)
        # All carried columns of both operands appear, qualified.
        assert all("." in c for c in execution.column_names)
        assert any(c.startswith("R1.") for c in execution.column_names)
        assert any(c.startswith("R2.") for c in execution.column_names)
