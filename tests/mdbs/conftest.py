"""Shared MDBS test fixtures: a small two-site multidatabase system."""

import pytest

from repro.core.builder import CostModelBuilder
from repro.core.classification import G1, G3
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.mdbs.agent import MDBSAgent
from repro.mdbs.server import MDBSServer
from repro.workload import make_site

MDBS_TABLES = ["R1", "R2", "R3", "R4"]


@pytest.fixture(scope="session")
def mini_mdbs():
    """Two dynamic sites with G1 and G3 cost models registered."""
    oracle = make_site(
        "oracle_site", profile=ORACLE_LIKE, environment_kind="uniform",
        scale=0.01, seed=61,
    )
    db2 = make_site(
        "db2_site", profile=DB2_LIKE, environment_kind="uniform",
        scale=0.01, seed=62,
    )
    server = MDBSServer()
    sites = {site.name: site for site in (oracle, db2)}
    for site in sites.values():
        server.register_agent(MDBSAgent(site.database))
        builder = CostModelBuilder(site.database)
        for query_class, count in ((G1, 80), (G3, 100)):
            queries = site.generator.queries_for(query_class, count, tables=MDBS_TABLES)
            outcome = builder.build(query_class, queries, algorithm="iupma")
            server.store_cost_model(site.name, outcome.model)
    return server, sites
