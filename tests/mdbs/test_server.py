"""Unit tests for global execution via the MDBS server."""

import pytest

from repro.engine.predicate import Comparison
from repro.mdbs.gquery import GlobalJoinQuery


@pytest.fixture
def globalq():
    return GlobalJoinQuery(
        "oracle_site",
        "R1",
        "db2_site",
        "R2",
        "a4",
        "a4",
        ("R1.a1", "R1.a5", "R2.a2"),
        left_predicate=Comparison("a3", "<", 600),
        right_predicate=Comparison("a7", ">", 10000),
    )


def cross_site_reference(sites, query):
    """Naive cross-site join computed directly over the raw tables."""
    left = sites[query.left_site].database.catalog.table(query.left_table)
    right = sites[query.right_site].database.catalog.table(query.right_table)
    lpos = left.schema.position(query.left_join_column)
    rpos = right.schema.position(query.right_join_column)
    out = []
    for lrow in left:
        if not query.left_predicate.evaluate(lrow, left.schema):
            continue
        for rrow in right:
            if not query.right_predicate.evaluate(rrow, right.schema):
                continue
            if lrow[lpos] == rrow[rpos]:
                values = {}
                for c in left.schema.column_names:
                    values[f"{query.left_table}.{c}"] = lrow[left.schema.position(c)]
                for c in right.schema.column_names:
                    values[f"{query.right_table}.{c}"] = rrow[right.schema.position(c)]
                out.append(tuple(values[c] for c in query.columns))
    return out


class TestRegistration:
    def test_sites_registered(self, mini_mdbs):
        server, _ = mini_mdbs
        assert set(server.catalog.sites) == {"oracle_site", "db2_site"}

    def test_facts_imported(self, mini_mdbs):
        server, sites = mini_mdbs
        facts = server.catalog.table("oracle_site", "R1")
        assert facts.cardinality == sites[
            "oracle_site"
        ].database.catalog.table("R1").cardinality


class TestExecution:
    def test_result_matches_cross_site_reference(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        execution = server.execute(globalq)
        assert sorted(execution.rows) == sorted(cross_site_reference(sites, globalq))
        assert execution.column_names == globalq.columns

    def test_steps_cover_selects_ship_join(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        execution = server.execute(globalq)
        descriptions = " | ".join(s.description for s in execution.steps)
        assert "select R1" in descriptions
        assert "select R2" in descriptions
        assert "ship" in descriptions
        assert "join at" in descriptions
        assert execution.observed_seconds > 0

    def test_estimate_same_order_of_magnitude(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        execution = server.execute(globalq)
        ratio = max(
            execution.observed_seconds / execution.estimated_seconds,
            execution.estimated_seconds / execution.observed_seconds,
        )
        assert ratio < 10.0

    def test_temp_tables_cleaned_up(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        server.execute(globalq)
        for site in sites.values():
            assert not site.database.catalog.has_table("_g_left")
            assert not site.database.catalog.has_table("_g_right")

    def test_forced_join_site_still_correct(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        expected = sorted(cross_site_reference(sites, globalq))
        for plan in server.optimizer().plans(globalq):
            execution = server.execute(globalq, plan)
            assert sorted(execution.rows) == expected

    def test_refresh_site_facts(self, mini_mdbs):
        server, sites = mini_mdbs
        server.refresh_site_facts("oracle_site")
        facts = server.catalog.table("oracle_site", "R1")
        assert facts.cardinality > 0
