"""Unit tests for global execution via the MDBS server."""

import pytest

from repro.engine.predicate import Comparison
from repro.mdbs.gquery import GlobalJoinQuery


@pytest.fixture
def globalq():
    return GlobalJoinQuery(
        "oracle_site",
        "R1",
        "db2_site",
        "R2",
        "a4",
        "a4",
        ("R1.a1", "R1.a5", "R2.a2"),
        left_predicate=Comparison("a3", "<", 600),
        right_predicate=Comparison("a7", ">", 10000),
    )


def cross_site_reference(sites, query):
    """Naive cross-site join computed directly over the raw tables."""
    left = sites[query.left_site].database.catalog.table(query.left_table)
    right = sites[query.right_site].database.catalog.table(query.right_table)
    lpos = left.schema.position(query.left_join_column)
    rpos = right.schema.position(query.right_join_column)
    out = []
    for lrow in left:
        if not query.left_predicate.evaluate(lrow, left.schema):
            continue
        for rrow in right:
            if not query.right_predicate.evaluate(rrow, right.schema):
                continue
            if lrow[lpos] == rrow[rpos]:
                values = {}
                for c in left.schema.column_names:
                    values[f"{query.left_table}.{c}"] = lrow[left.schema.position(c)]
                for c in right.schema.column_names:
                    values[f"{query.right_table}.{c}"] = rrow[right.schema.position(c)]
                out.append(tuple(values[c] for c in query.columns))
    return out


class TestRegistration:
    def test_sites_registered(self, mini_mdbs):
        server, _ = mini_mdbs
        assert set(server.catalog.sites) == {"oracle_site", "db2_site"}

    def test_facts_imported(self, mini_mdbs):
        server, sites = mini_mdbs
        facts = server.catalog.table("oracle_site", "R1")
        assert facts.cardinality == sites[
            "oracle_site"
        ].database.catalog.table("R1").cardinality


class TestExecution:
    def test_result_matches_cross_site_reference(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        execution = server.execute(globalq)
        assert sorted(execution.rows) == sorted(cross_site_reference(sites, globalq))
        assert execution.column_names == globalq.columns

    def test_steps_cover_selects_ship_join(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        execution = server.execute(globalq)
        descriptions = " | ".join(s.description for s in execution.steps)
        assert "select R1" in descriptions
        assert "select R2" in descriptions
        assert "ship" in descriptions
        assert "join at" in descriptions
        assert execution.observed_seconds > 0

    def test_estimate_same_order_of_magnitude(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        execution = server.execute(globalq)
        ratio = max(
            execution.observed_seconds / execution.estimated_seconds,
            execution.estimated_seconds / execution.observed_seconds,
        )
        assert ratio < 10.0

    def test_temp_tables_cleaned_up(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        server.execute(globalq)
        for site in sites.values():
            assert not site.database.catalog.has_table("_g_left")
            assert not site.database.catalog.has_table("_g_right")

    def test_forced_join_site_still_correct(self, mini_mdbs, globalq):
        server, sites = mini_mdbs
        expected = sorted(cross_site_reference(sites, globalq))
        for plan in server.optimizer().plans(globalq):
            execution = server.execute(globalq, plan)
            assert sorted(execution.rows) == expected

    def test_refresh_site_facts(self, mini_mdbs):
        server, sites = mini_mdbs
        server.refresh_site_facts("oracle_site")
        facts = server.catalog.table("oracle_site", "R1")
        assert facts.cardinality > 0


class TestObservability:
    """A global execution produces a well-formed nested trace."""

    def run_traced(self, server, globalq):
        from repro import obs

        with obs.recording() as tracer:
            execution = server.execute(globalq)
        return execution, tracer.finished()

    def test_nested_span_tree(self, mini_mdbs, globalq):
        server, _ = mini_mdbs
        execution, spans = self.run_traced(server, globalq)
        by_id = {s.span_id: s for s in spans}

        (root,) = [s for s in spans if s.name == "mdbs.execute"]
        assert root.parent_id is None
        assert root.attributes["join_site"] == execution.plan.join_site
        assert root.attributes["observed_seconds"] == pytest.approx(
            execution.observed_seconds
        )
        assert root.attributes["estimated_seconds"] == pytest.approx(
            execution.estimated_seconds
        )

        # Optimization happened inside the execute span.
        (optimize,) = [s for s in spans if s.name == "mdbs.optimize"]
        assert by_id[optimize.parent_id] is root

        # One span per plan step, all children of the root, mirroring
        # the StepTiming list exactly (same simulated seconds).
        steps = [s for s in spans if s.name.startswith("mdbs.step.")]
        assert sorted(s.name for s in steps) == [
            "mdbs.step.join",
            "mdbs.step.select",
            "mdbs.step.select",
            "mdbs.step.ship",
        ]
        assert all(by_id[s.parent_id] is root for s in steps)
        span_seconds = sorted(s.attributes["simulated_seconds"] for s in steps)
        timing_seconds = sorted(t.seconds for t in execution.steps)
        assert span_seconds == pytest.approx(timing_seconds)
        span_descriptions = {s.attributes["description"] for s in steps}
        assert span_descriptions == {t.description for t in execution.steps}

        # Agent executions nest under their step; engine under the agent.
        for agent_span in (s for s in spans if s.name == "mdbs.agent.execute"):
            assert by_id[agent_span.parent_id].name in (
                "mdbs.step.select",
                "mdbs.step.join",
            )
        for engine_span in (s for s in spans if s.name == "engine.execute"):
            # Plan-step work runs via an agent; probing runs the probe
            # query directly against the local database.
            assert by_id[engine_span.parent_id].name in (
                "mdbs.agent.execute",
                "mdbs.probe",
            )

        # Probing queries (issued during optimization) are traced too.
        probes = [s for s in spans if s.name == "mdbs.probe"]
        assert probes
        assert all(s.attributes["mode"] == "observed" for s in probes)

        # Well-formed: every span closed, children inside their parents.
        for span in spans:
            assert span.end is not None
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start <= span.end <= parent.end

    def test_trace_exports_as_jsonl(self, mini_mdbs, globalq, tmp_path):
        import json

        from repro import obs

        server, _ = mini_mdbs
        _, spans = self.run_traced(server, globalq)
        path = tmp_path / "mdbs_trace.jsonl"
        count = obs.write_jsonl(spans, path)
        decoded = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(decoded) == count == len(spans)
        ids = {e["span_id"] for e in decoded}
        assert all(e["parent_id"] is None or e["parent_id"] in ids for e in decoded)

    def test_counters_and_gauges(self, mini_mdbs, globalq):
        from repro import obs

        server, _ = mini_mdbs
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            execution = server.execute(globalq)
        finally:
            obs.set_registry(previous)
        assert registry.counter_value("mdbs.global_queries") == 1.0
        assert registry.counter_value("mdbs.probes.observed") > 0
        snapshot = registry.snapshot()
        assert snapshot["mdbs.last_observed_seconds"]["value"] == pytest.approx(
            execution.observed_seconds
        )
        assert snapshot["mdbs.last_estimated_seconds"]["value"] == pytest.approx(
            execution.estimated_seconds
        )
        assert snapshot["mdbs.step_seconds"]["count"] == len(execution.steps)

    def test_untraced_execution_records_nothing(self, mini_mdbs, globalq):
        from repro import obs

        server, _ = mini_mdbs
        assert not obs.enabled()
        execution = server.execute(globalq)
        assert execution.cardinality >= 0
        assert obs.get_tracer().finished() == []
