"""Unit tests for the probing service: cache, coalescing, degradation.

Includes the two lifecycle acceptance properties:

* one ``optimizer.choose()`` on a two-site join executes at most one
  probing query per site (proved via obs counters);
* with the cache disabled (``ttl=0``) plan choices are byte-identical
  to the pre-lifecycle behavior (probe each site once through the
  agents, in left-then-right order, and share the readings across the
  candidate plans).
"""

import pytest

from repro import obs
from repro.engine.predicate import Comparison
from repro.mdbs.gquery import GlobalJoinQuery, decompose
from repro.mdbs.optimizer import (
    CostEstimate,
    GlobalPlan,
    GlobalQueryOptimizer,
    estimate_join_variables,
)
from repro.mdbs.probing_service import ProbeReading, ProbingService


@pytest.fixture
def globalq():
    return GlobalJoinQuery(
        "oracle_site",
        "R2",
        "db2_site",
        "R3",
        "a4",
        "a4",
        ("R2.a1", "R3.a2"),
        left_predicate=Comparison("a3", "<", 500),
        right_predicate=Comparison("a7", ">", 25000),
    )


def snapshot_sites(sites):
    return {name: site.database.save_state() for name, site in sites.items()}


def restore_sites(sites, snapshot):
    for name, site in sites.items():
        site.database.restore_state(snapshot[name])


@pytest.fixture(autouse=True)
def _hermetic_mdbs(mini_mdbs):
    """mini_mdbs is session-scoped; these tests advance clocks and
    calibrate estimators, so rewind everything after each test."""
    server, sites = mini_mdbs
    snapshot = snapshot_sites(sites)
    estimators = {name: server.agents[name].estimator for name in sites}
    yield
    restore_sites(sites, snapshot)
    for name, estimator in estimators.items():
        server.agents[name].estimator = estimator
    server.probing.invalidate()


def seed_reference_choose(server, query):
    """The pre-lifecycle optimizer, re-implemented independently.

    Probes each site once *directly through the agents* (left then
    right), shares the readings across both candidate plans, and picks
    the cheaper one — exactly what the seed ``plans()``/``choose()``
    did before the probing service existed.
    """
    optimizer = GlobalQueryOptimizer(server.catalog, server.agents, server.network)
    left_facts = server.catalog.table(query.left_site, query.left_table)
    right_facts = server.catalog.table(query.right_site, query.right_table)
    components = decompose(
        query, tuple(left_facts.column_widths), tuple(right_facts.column_widths)
    )
    left_probe = server.agents[query.left_site].probing_cost()
    right_probe = server.agents[query.right_site].probing_cost()
    left_est, left_vars = optimizer.estimate_select(
        query.left_site, components.left, left_probe
    )
    right_est, right_vars = optimizer.estimate_select(
        query.right_site, components.right, right_probe
    )
    l1 = float(sum(left_facts.column_widths[c] for c in components.left.columns))
    l2 = float(sum(right_facts.column_widths[c] for c in components.right.columns))
    ndv1 = left_facts.column_stats.get(query.left_join_column, (None, None, 1))[2]
    ndv2 = right_facts.column_stats.get(query.right_join_column, (None, None, 1))[2]
    join_values = estimate_join_variables(
        left_vars["nr"], right_vars["nr"], l1, l2, ndv1, ndv2
    )
    plans = []
    for join_site_key, shipped_rows, shipped_width, probe in (
        ("right", left_vars["nr"], l1, right_probe),
        ("left", right_vars["nr"], l2, left_probe),
    ):
        site = query.right_site if join_site_key == "right" else query.left_site
        ship = CostEstimate(
            f"ship {int(shipped_rows)} tuples to {site}",
            server.network.transfer_seconds(shipped_rows * shipped_width),
        )
        join_est = optimizer.estimate_join(site, join_values, probe)
        plans.append(
            GlobalPlan(
                query=query,
                components=components,
                join_site=join_site_key,
                estimates=[left_est, right_est, ship, join_est],
            )
        )
    return min(plans, key=lambda p: p.estimated_seconds)


class TestCoalescing:
    def test_choose_probes_each_site_at_most_once(self, mini_mdbs, globalq):
        """Acceptance: obs counters prove ≤1 probing query per site per
        choose(), for the server's shared service and a fresh one."""
        server, _ = mini_mdbs
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            server.optimizer().choose(globalq)
        finally:
            obs.set_registry(previous)
        for site in ("oracle_site", "db2_site"):
            assert registry.counter_value(f"mdbs.probing.executed.{site}") <= 1.0
        # Exactly one observed probe per involved site, none anywhere else.
        assert registry.counter_value("mdbs.probes.observed") == 2.0
        assert registry.counter_value("mdbs.probing.source.observed") == 2.0

    def test_same_site_join_probes_once(self, mini_mdbs):
        server, _ = mini_mdbs
        query = GlobalJoinQuery(
            "oracle_site",
            "R1",
            "oracle_site",
            "R2",
            "a4",
            "a4",
            ("R1.a1", "R2.a2"),
            left_predicate=Comparison("a3", "<", 500),
        )
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            server.optimizer().choose(query)
        finally:
            obs.set_registry(previous)
        assert registry.counter_value("mdbs.probing.executed.oracle_site") == 1.0


class TestTTLZeroMatchesSeed:
    def test_plan_choice_byte_identical_to_seed(self, mini_mdbs, globalq):
        """Acceptance: with ttl=0 the lifecycle path reproduces the seed
        optimizer's choice — and its full estimate breakdown — byte for
        byte from an identical site state."""
        server, sites = mini_mdbs
        snapshot = snapshot_sites(sites)

        optimizer = GlobalQueryOptimizer(
            server.catalog,
            server.agents,
            server.network,
            probing=ProbingService(server.agents, ttl=0.0),
        )
        lifecycle_plan = optimizer.choose(globalq)

        restore_sites(sites, snapshot)
        reference_plan = seed_reference_choose(server, globalq)

        assert lifecycle_plan.describe() == reference_plan.describe()
        assert lifecycle_plan.join_site == reference_plan.join_site
        assert [
            (e.description, e.seconds, e.class_label, e.state)
            for e in lifecycle_plan.estimates
        ] == [
            (e.description, e.seconds, e.class_label, e.state)
            for e in reference_plan.estimates
        ]

    def test_ttl_zero_never_serves_from_cache(self, mini_mdbs):
        server, _ = mini_mdbs
        service = ProbingService(server.agents, ttl=0.0)
        service.probing_cost("oracle_site")
        service.probing_cost("oracle_site")
        assert service.cache_hits == 0
        assert service.probes_executed["oracle_site"] == 2


class TestTTLCache:
    def test_second_read_within_ttl_is_cached(self, mini_mdbs):
        server, sites = mini_mdbs
        service = ProbingService(server.agents, ttl=600.0)
        first = service.probe("oracle_site")
        again = service.probe("oracle_site")
        assert again == first
        assert service.cache_hits == 1
        assert service.probes_executed["oracle_site"] == 1

    def test_expired_entry_probes_again(self, mini_mdbs):
        server, sites = mini_mdbs
        service = ProbingService(server.agents, ttl=60.0)
        service.probe("oracle_site")
        sites["oracle_site"].environment.advance(120.0)
        service.probe("oracle_site")
        assert service.probes_executed["oracle_site"] == 2

    def test_rewound_clock_invalidates_entry(self, mini_mdbs):
        # Fork-and-rewind experiments move the clock backwards; a cache
        # entry stamped in the "future" must not be served.
        server, sites = mini_mdbs
        database = sites["oracle_site"].database
        service = ProbingService(server.agents, ttl=600.0)
        state = database.save_state()
        database.environment.advance(50.0)
        service.probe("oracle_site")
        database.restore_state(state)
        service.probe("oracle_site")
        assert service.probes_executed["oracle_site"] == 2

    def test_invalidate_forces_fresh_probe(self, mini_mdbs):
        server, _ = mini_mdbs
        service = ProbingService(server.agents, ttl=600.0)
        service.probe("oracle_site")
        service.invalidate("oracle_site")
        service.probe("oracle_site")
        assert service.probes_executed["oracle_site"] == 2

    def test_negative_ttl_rejected(self, mini_mdbs):
        server, _ = mini_mdbs
        with pytest.raises(ValueError):
            ProbingService(server.agents, ttl=-1.0)

    def test_unknown_site_rejected(self, mini_mdbs):
        server, _ = mini_mdbs
        service = ProbingService(server.agents)
        with pytest.raises(KeyError):
            service.probe("nowhere")


class TestSourceCounterInvariant:
    """Every acquisition lands on exactly one ``mdbs.probing.source.*``
    level — so the four level counters always sum to the cache-miss
    count, through invalidation, degradation, and clock expiry alike."""

    SOURCES = ("observed", "estimated", "last_known", "static")

    def _source_total(self, registry):
        return sum(
            registry.counter_value(f"mdbs.probing.source.{s}") for s in self.SOURCES
        )

    def test_one_level_counter_per_acquisition(self, mini_mdbs, monkeypatch):
        server, sites = mini_mdbs
        oracle = server.agents["oracle_site"]
        db2 = server.agents["db2_site"]
        oracle.calibrate_estimator(samples=40, interval_seconds=45.0)

        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            service = ProbingService(server.agents, ttl=600.0)

            service.probe("oracle_site")  # miss -> observed
            assert self._source_total(registry) == 1.0

            service.probe("oracle_site")  # hit -> no source counter
            assert self._source_total(registry) == 1.0

            service.invalidate("oracle_site")
            service.probe("oracle_site")  # miss again -> observed
            assert self._source_total(registry) == 2.0
            assert registry.counter_value("mdbs.probing.source.observed") == 2.0

            def boom():
                raise RuntimeError("probe table is gone")

            monkeypatch.setattr(oracle, "observed_probing_cost", boom)
            service.invalidate("oracle_site")
            service.probe("oracle_site")  # degrade -> estimated
            assert self._source_total(registry) == 3.0
            assert registry.counter_value("mdbs.probing.source.estimated") == 1.0

            service.probe("db2_site")  # healthy -> observed
            assert self._source_total(registry) == 4.0

            monkeypatch.setattr(db2, "observed_probing_cost", boom)
            monkeypatch.setattr(db2, "estimator", None)
            # Expire (not invalidate) the entry: the stale reading stays
            # available as the last_known fallback.
            sites["db2_site"].environment.advance(1200.0)
            service.probe("db2_site")  # degrade -> last_known
            assert self._source_total(registry) == 5.0
            assert registry.counter_value("mdbs.probing.source.last_known") == 1.0

            service.invalidate("db2_site")
            service.probe("db2_site")  # nothing left -> static
            assert self._source_total(registry) == 6.0
            assert registry.counter_value("mdbs.probing.source.static") == 1.0

            assert (
                self._source_total(registry)
                == registry.counter_value("mdbs.probing.cache_misses")
            )
        finally:
            obs.set_registry(previous)


class TestFallbackChain:
    def _broken(self, agent, monkeypatch):
        def boom():
            raise RuntimeError("probe table is gone")

        monkeypatch.setattr(agent, "observed_probing_cost", boom)

    def test_estimated_when_observed_fails(self, mini_mdbs, monkeypatch):
        server, _ = mini_mdbs
        agent = server.agents["oracle_site"]
        agent.calibrate_estimator(samples=40, interval_seconds=45.0)
        self._broken(agent, monkeypatch)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            service = ProbingService(server.agents)
            reading = service.probe("oracle_site")
        finally:
            obs.set_registry(previous)
        assert reading.source == "estimated"
        assert reading.cost is not None
        assert registry.counter_value("mdbs.probing.source.estimated") == 1.0

    def test_last_known_when_no_estimator(self, mini_mdbs, monkeypatch):
        server, _ = mini_mdbs
        agent = server.agents["db2_site"]
        service = ProbingService(server.agents, ttl=0.0)
        healthy = service.probe("db2_site")
        self._broken(agent, monkeypatch)
        monkeypatch.setattr(agent, "estimator", None)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            reading = service.probe("db2_site")
        finally:
            obs.set_registry(previous)
        assert reading.source == "last_known"
        assert reading.cost == healthy.cost
        assert registry.counter_value("mdbs.probing.source.last_known") == 1.0

    def test_static_when_nothing_available(self, mini_mdbs, monkeypatch):
        server, _ = mini_mdbs
        agent = server.agents["db2_site"]
        self._broken(agent, monkeypatch)
        monkeypatch.setattr(agent, "estimator", None)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            service = ProbingService(server.agents)
            reading = service.probe("db2_site")
        finally:
            obs.set_registry(previous)
        assert reading == ProbeReading(None, "static", reading.at_time)
        assert registry.counter_value("mdbs.probing.source.static") == 1.0

    def test_optimizer_degrades_to_static_prediction(
        self, mini_mdbs, globalq, monkeypatch
    ):
        """Even with both probes dead the optimizer still returns a plan."""
        server, _ = mini_mdbs
        for site in ("oracle_site", "db2_site"):
            self._broken(server.agents[site], monkeypatch)
            monkeypatch.setattr(server.agents[site], "estimator", None)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            optimizer = GlobalQueryOptimizer(
                server.catalog,
                server.agents,
                server.network,
                probing=ProbingService(server.agents),
            )
            plan = optimizer.choose(globalq)
        finally:
            obs.set_registry(previous)
        assert plan.join_site in ("left", "right")
        assert plan.estimated_seconds >= 0.0
        assert registry.counter_value("mdbs.optimizer.static_predictions") > 0
        assert registry.counter_value("mdbs.probing.source.static") > 0


class TestTTLBoundary:
    """The TTL interval is closed: ``age == ttl`` is still a hit.

    Pinned explicitly because "within the TTL" is ambiguous at the
    boundary and the plan cache's hit-rate accounting (and the serving
    bench) depend on the exact semantics staying put.
    """

    def test_age_exactly_ttl_is_a_hit(self, mini_mdbs):
        server, sites = mini_mdbs
        service = ProbingService(server.agents, ttl=60.0)
        first = service.probe("oracle_site")
        sites["oracle_site"].environment.advance(
            60.0 - (sites["oracle_site"].environment.now - first.at_time)
        )
        again = service.probe("oracle_site")
        assert again is first
        assert service.cache_hits == 1
        assert service.probes_executed["oracle_site"] == 1

    def test_age_just_past_ttl_is_a_miss(self, mini_mdbs):
        server, sites = mini_mdbs
        service = ProbingService(server.agents, ttl=60.0)
        first = service.probe("oracle_site")
        sites["oracle_site"].environment.advance(
            60.0 - (sites["oracle_site"].environment.now - first.at_time) + 1e-6
        )
        service.probe("oracle_site")
        assert service.probes_executed["oracle_site"] == 2


class _RecordingTracker:
    """An AccuracyTracker stand-in counting record_probe calls."""

    def __init__(self):
        self.fed = []

    def record_probe(self, site, cost, at_time=None):
        self.fed.append((site, cost, at_time))


class TestTrackerFeedIdempotency:
    """One executed probe = exactly one tracker sample, however many
    requests the reading serves (cache hits and coalesced sharers must
    not re-feed the accuracy tracker)."""

    def test_cache_hits_do_not_refeed_the_tracker(self, mini_mdbs):
        server, _ = mini_mdbs
        tracker = _RecordingTracker()
        service = ProbingService(server.agents, ttl=600.0, tracker=tracker)
        for _ in range(5):
            service.probe("oracle_site")
        assert service.probes_executed["oracle_site"] == 1
        assert len(tracker.fed) == 1
        assert tracker.fed[0][0] == "oracle_site"

    def test_every_execution_feeds_exactly_once(self, mini_mdbs):
        server, _ = mini_mdbs
        tracker = _RecordingTracker()
        service = ProbingService(server.agents, ttl=0.0, tracker=tracker)
        for _ in range(3):
            service.probe("db2_site")
        assert len(tracker.fed) == 3


class TestSingleFlight:
    """Concurrent cold-cache probes of one site execute exactly one
    probing query; everyone else blocks on the site lock and shares it
    (cross-request probe sharing, counted in ``coalesced``)."""

    def test_concurrent_probes_share_one_execution(self, mini_mdbs):
        import threading

        server, _ = mini_mdbs
        tracker = _RecordingTracker()
        service = ProbingService(server.agents, ttl=3600.0, tracker=tracker)
        agent = server.agents["oracle_site"]
        real_probe = agent.observed_probing_cost
        entered = threading.Event()
        release = threading.Event()

        def slow_probe():
            entered.set()
            release.wait(10.0)
            return real_probe()

        agent.observed_probing_cost = slow_probe
        try:
            workers = 6
            barrier = threading.Barrier(workers)
            readings = [None] * workers

            def worker(i):
                barrier.wait()
                readings[i] = service.probe("oracle_site")

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(workers)
            ]
            for t in threads:
                t.start()
            assert entered.wait(10.0)  # one worker is inside the probe...
            # ...give the rest time to block on the site lock, then let
            # the executor finish so they coalesce onto its reading.
            release.wait(0.05)
            release.set()
            for t in threads:
                t.join()
        finally:
            agent.observed_probing_cost = real_probe

        assert service.probes_executed["oracle_site"] == 1
        assert len(tracker.fed) == 1
        assert all(r is readings[0] for r in readings)
        # Every non-executor was served the shared reading; those that
        # blocked on the lock are additionally counted as coalesced (a
        # straggler may instead hit the lock-free fast path).
        assert service.cache_hits == workers - 1
        assert 1 <= service.coalesced <= workers - 1
