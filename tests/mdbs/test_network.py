"""Unit tests for the network model."""

import pytest

from repro.mdbs.network import NetworkModel


def test_zero_bytes_is_free():
    assert NetworkModel().transfer_seconds(0) == 0.0


def test_latency_plus_bandwidth():
    net = NetworkModel(latency_seconds=0.1, bytes_per_second=1000)
    assert net.transfer_seconds(500) == pytest.approx(0.1 + 0.5)


def test_monotone_in_size():
    net = NetworkModel()
    assert net.transfer_seconds(2_000_000) > net.transfer_seconds(1_000)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        NetworkModel().transfer_seconds(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        NetworkModel(latency_seconds=-0.1)
    with pytest.raises(ValueError):
        NetworkModel(bytes_per_second=0)
