"""Property tests for the buffer pool's snapshot/restore round-trip.

The engine-hotpaths bench and the hermetic serving fixtures both lean on
``snapshot()``/``restore()`` rewinding a pool *exactly*: after a rewind,
replaying any future access sequence must produce the byte-identical
hit/miss ledger the first playthrough produced — over any capacity,
window shape, and access pattern, which is what Hypothesis sweeps here.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.buffer import BufferPool

#: A tiny key universe forces evictions and window churn at small sizes.
keys = st.integers(0, 30)
sequences = st.lists(keys, max_size=200)
pools = st.builds(
    BufferPool,
    capacity_pages=st.integers(1, 12),
    window=st.integers(1, 64),
    evict_scan=st.integers(1, 8),
)


def ledger(pool: BufferPool, sequence) -> list[bool]:
    return [pool.access(key) for key in sequence]


def observable_state(pool: BufferPool) -> tuple:
    return (
        pool.resident_keys(),
        dataclasses.astuple(pool.stats),
        pool.hit_state(),
    )


@settings(max_examples=120, deadline=None)
@given(pool=pools, prefix=sequences, suffix=sequences)
def test_restore_replays_identical_ledger(pool, prefix, suffix):
    ledger(pool, prefix)
    saved = pool.snapshot()
    first = ledger(pool, suffix)
    after_first = observable_state(pool)

    pool.restore(saved)
    second = ledger(pool, suffix)

    assert second == first
    assert observable_state(pool) == after_first


@settings(max_examples=60, deadline=None)
@given(pool=pools, prefix=sequences, garbage=sequences)
def test_snapshot_is_isolated_from_later_mutation(pool, prefix, garbage):
    """The saved state is a copy: later accesses must not bleed into it."""
    ledger(pool, prefix)
    saved = pool.snapshot()
    at_save = observable_state(pool)

    ledger(pool, garbage)
    pool.clear()
    pool.reset_stats()

    pool.restore(saved)
    assert observable_state(pool) == at_save


@settings(max_examples=60, deadline=None)
@given(pool=pools, sequence=sequences)
def test_two_pools_fed_the_same_sequence_agree(pool, sequence):
    """Determinism: the policy is a pure function of the access order."""
    twin = BufferPool(
        capacity_pages=pool.capacity_pages,
        window=pool.window,
        evict_scan=pool.evict_scan,
    )
    assert ledger(pool, sequence) == ledger(twin, sequence)
    assert observable_state(pool) == observable_state(twin)
