"""Unit and property tests for equi-depth histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.histogram import EquiDepthHistogram
from repro.engine.predicate import Comparison
from repro.engine.schema import ColumnStatistics, TableStatistics


class TestConstruction:
    def test_buckets_roughly_equal_depth(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, 1000)
        hist = EquiDepthHistogram.build(values, num_buckets=10)
        assert hist.num_buckets == 10
        assert hist.total_rows == 1000
        assert max(hist.counts) <= 2 * min(hist.counts)

    def test_duplicates_not_split_across_buckets(self):
        values = [1.0] * 50 + [2.0] * 50
        hist = EquiDepthHistogram.build(values, num_buckets=4)
        # Each run of duplicates lives in exactly one bucket.
        assert hist.total_rows == 100
        for count, d in zip(hist.counts, hist.distinct):
            assert d <= 2

    def test_fewer_values_than_buckets(self):
        hist = EquiDepthHistogram.build([3.0, 1.0], num_buckets=16)
        assert hist.num_buckets <= 2
        assert hist.total_rows == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram.build([], 4)

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram.build([1.0], 0)

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram((0.0, 1.0), (5, 5), (1, 1))  # boundary count
        with pytest.raises(ValueError):
            EquiDepthHistogram((1.0, 0.0, 2.0), (5, 5), (1, 1))  # unsorted


class TestEstimation:
    @pytest.fixture
    def skewed(self):
        # 90% of the mass below 10, the rest spread to 1000.
        rng = np.random.default_rng(2)
        values = np.concatenate(
            [rng.uniform(0, 10, 900), rng.uniform(10, 1000, 100)]
        )
        return values, EquiDepthHistogram.build(values, num_buckets=20)

    def test_estimate_le_tracks_truth_on_skew(self, skewed):
        values, hist = skewed
        for cut in (5.0, 10.0, 100.0, 500.0):
            truth = float(np.mean(values <= cut))
            assert hist.estimate_le(cut) == pytest.approx(truth, abs=0.05)

    def test_uniform_assumption_fails_where_histogram_succeeds(self, skewed):
        values, hist = skewed
        truth = float(np.mean(values <= 10.0))  # ~0.9
        uniform_guess = 10.0 / float(values.max())  # ~0.01
        assert abs(hist.estimate_le(10.0) - truth) < 0.05
        assert abs(uniform_guess - truth) > 0.5

    def test_le_bounds(self, skewed):
        _, hist = skewed
        assert hist.estimate_le(-1.0) == 0.0
        assert hist.estimate_le(10_000.0) == 1.0

    def test_le_monotone(self, skewed):
        _, hist = skewed
        points = np.linspace(-5, 1100, 60)
        estimates = [hist.estimate_le(p) for p in points]
        assert estimates == sorted(estimates)

    def test_range_estimate(self, skewed):
        values, hist = skewed
        truth = float(np.mean((values >= 2.0) & (values <= 8.0)))
        assert hist.estimate_range(2.0, 8.0) == pytest.approx(truth, abs=0.06)

    def test_eq_estimate_on_duplicates(self):
        # A run of duplicates dominating the column: since runs are never
        # split, the run's bucket has distinct=1 and eq is exact.
        values = [5.0] * 500 + [float(v) for v in range(1000, 1500)]
        hist = EquiDepthHistogram.build(values, num_buckets=10)
        assert hist.estimate_eq(5.0) == pytest.approx(0.5, abs=0.01)

    def test_eq_outside_range_is_zero(self, skewed):
        _, hist = skewed
        assert hist.estimate_eq(-3.0) == 0.0


class TestPredicateIntegration:
    def make_stats(self, values, build=True):
        stats = TableStatistics(cardinality=len(values))
        stats.columns["a"] = ColumnStatistics.from_values(
            values, build_histogram=build
        )
        return stats

    def test_selectivity_uses_histogram_when_present(self):
        values = [1] * 900 + list(range(2, 102))
        with_hist = self.make_stats(values, build=True)
        without = self.make_stats(values, build=False)
        truth = 900 / 1000
        sel_hist = Comparison("a", "<=", 1).selectivity(with_hist)
        sel_uniform = Comparison("a", "<=", 1).selectivity(without)
        assert sel_hist == pytest.approx(truth, abs=0.05)
        assert abs(sel_uniform - truth) > 0.3

    def test_all_operators_stay_in_unit_interval(self):
        rng = np.random.default_rng(3)
        stats = self.make_stats(list(rng.integers(0, 100, 500)))
        for op in ("=", "!=", "<", "<=", ">", ">="):
            s = Comparison("a", op, 30).selectivity(stats)
            assert 0.0 <= s <= 1.0

    def test_complementarity(self):
        rng = np.random.default_rng(4)
        stats = self.make_stats(list(rng.integers(0, 1000, 800)))
        below = Comparison("a", "<", 300).selectivity(stats)
        at_or_above = Comparison("a", ">=", 300).selectivity(stats)
        assert below + at_or_above == pytest.approx(1.0, abs=0.02)

    def test_string_columns_skip_histogram(self):
        stats = TableStatistics(cardinality=3)
        stats.columns["a"] = ColumnStatistics.from_values(
            ["x", "y", "z"], build_histogram=True
        )
        assert stats.columns["a"].histogram is None


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(-1000, 1000, allow_nan=False), min_size=1, max_size=300),
    buckets=st.integers(1, 20),
    cut=st.floats(-1200, 1200, allow_nan=False),
)
def test_property_estimate_le_close_to_truth(values, buckets, cut):
    """The equi-depth estimate of P(X <= c) errs by at most ~1.5 buckets."""
    hist = EquiDepthHistogram.build(values, num_buckets=buckets)
    truth = sum(1 for v in values if v <= cut) / len(values)
    # The error is bounded by the heaviest bucket's mass (duplicates make
    # buckets unequal, so 1/num_buckets is not the right yardstick).
    tolerance = 1.5 * max(hist.counts) / hist.total_rows + 1e-9
    assert abs(hist.estimate_le(cut) - truth) <= max(tolerance, 0.08)
