"""Unit tests for repro.engine.query."""

import pytest

from repro.engine.errors import QueryError
from repro.engine.predicate import Comparison, TruePredicate
from repro.engine.query import JoinQuery, SelectQuery
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType

T1 = TableSchema("t1", [Column("a", DataType.INT), Column("b", DataType.INT)])
T2 = TableSchema("t2", [Column("x", DataType.INT), Column("y", DataType.STR)])


class TestSelectQuery:
    def test_default_predicate_is_true(self):
        q = SelectQuery("t1")
        assert isinstance(q.predicate, TruePredicate)

    def test_star_expands_all_columns(self):
        assert SelectQuery("t1").output_columns(T1) == ("a", "b")

    def test_explicit_projection(self):
        assert SelectQuery("t1", ("b",)).output_columns(T1) == ("b",)

    def test_validate_ok(self):
        SelectQuery("t1", ("a",), Comparison("b", ">", 1)).validate(T1)

    def test_validate_wrong_table(self):
        with pytest.raises(QueryError):
            SelectQuery("t2", ("a",)).validate(T1)

    def test_validate_unknown_projection_column(self):
        with pytest.raises(QueryError):
            SelectQuery("t1", ("zz",)).validate(T1)

    def test_validate_unknown_predicate_column(self):
        with pytest.raises(QueryError):
            SelectQuery("t1", ("a",), Comparison("zz", "=", 1)).validate(T1)

    def test_str_rendering(self):
        q = SelectQuery("t1", ("a",), Comparison("b", ">", 1))
        assert str(q) == "SELECT a FROM t1 WHERE b > 1"
        assert str(SelectQuery("t1")) == "SELECT * FROM t1"


class TestJoinQuery:
    def make(self, **kwargs):
        defaults = dict(
            left="t1", right="t2", left_column="a", right_column="x"
        )
        defaults.update(kwargs)
        return JoinQuery(**defaults)

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery("t1", "t1", "a", "a")

    def test_default_output_columns_qualified(self):
        q = self.make()
        assert q.output_columns(T1, T2) == ("t1.a", "t1.b", "t2.x", "t2.y")

    def test_explicit_output_columns(self):
        q = self.make(columns=("t2.x", "t1.b"))
        assert q.output_columns(T1, T2) == ("t2.x", "t1.b")

    def test_validate_ok(self):
        self.make(
            left_predicate=Comparison("b", ">", 0),
            right_predicate=Comparison("x", "<", 9),
        ).validate(T1, T2)

    def test_validate_unknown_join_column(self):
        with pytest.raises(QueryError):
            self.make(left_column="zz").validate(T1, T2)

    def test_validate_incomparable_join_types(self):
        with pytest.raises(QueryError):
            self.make(right_column="y").validate(T1, T2)

    def test_validate_unqualified_output_column(self):
        with pytest.raises(QueryError):
            self.make(columns=("a",)).validate(T1, T2)

    def test_validate_output_column_of_unjoined_table(self):
        with pytest.raises(QueryError):
            self.make(columns=("t3.a",)).validate(T1, T2)

    def test_validate_predicate_on_wrong_table(self):
        with pytest.raises(QueryError):
            self.make(left_predicate=Comparison("x", "=", 1)).validate(T1, T2)

    def test_str_rendering(self):
        q = self.make(columns=("t1.a",), left_predicate=Comparison("b", ">", 1))
        text = str(q)
        assert "JOIN t2 ON t1.a = t2.x" in text
        assert "WHERE" in text
