"""Unit tests for repro.engine.table."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.schema import Column, TableSchema
from repro.engine.table import ResultTable, Table
from repro.engine.types import DataType

from ..conftest import make_test_table


def simple_table():
    schema = TableSchema("t", [Column("a", DataType.INT), Column("b", DataType.INT)])
    return Table(schema)


class TestTableBasics:
    def test_empty_table(self):
        table = simple_table()
        assert table.cardinality == 0
        assert table.num_pages == 0
        assert table.table_length == 0

    def test_insert_returns_row_id(self):
        table = simple_table()
        assert table.insert((1, 2)) == 0
        assert table.insert((3, 4)) == 1
        assert table.row(1) == (3, 4)

    def test_insert_validates(self):
        table = simple_table()
        with pytest.raises(SchemaError):
            table.insert((1,))

    def test_bulk_load_counts(self):
        table = simple_table()
        assert table.bulk_load([(i, i) for i in range(10)]) == 10
        assert table.cardinality == 10

    def test_iteration_order(self):
        table = simple_table()
        rows = [(3, 0), (1, 1), (2, 2)]
        table.bulk_load(rows)
        assert list(table) == rows

    def test_table_length(self):
        table = simple_table()
        table.bulk_load([(1, 1)] * 5)
        assert table.table_length == 5 * table.tuple_length

    def test_num_pages_grows(self):
        small = make_test_table(rows=10)
        large = make_test_table(rows=5000)
        assert large.num_pages > small.num_pages

    def test_column_values(self):
        table = simple_table()
        table.bulk_load([(1, 10), (2, 20)])
        assert table.column_values("b") == [10, 20]


class TestClustering:
    def test_cluster_on_sorts_rows(self):
        table = simple_table()
        table.bulk_load([(3, 0), (1, 1), (2, 2)])
        table.cluster_on("a")
        assert [r[0] for r in table] == [1, 2, 3]
        assert table.clustered_on == "a"

    def test_cluster_on_missing_column(self):
        table = simple_table()
        with pytest.raises(SchemaError):
            table.cluster_on("zz")


class TestStatistics:
    def test_analyze_computes_min_max_distinct(self):
        table = simple_table()
        table.bulk_load([(5, 1), (3, 1), (9, 2)])
        stats = table.analyze()
        assert stats.cardinality == 3
        assert stats.column("a").minimum == 3
        assert stats.column("a").maximum == 9
        assert stats.column("b").distinct_count == 2

    def test_statistics_cached_and_invalidated(self):
        table = simple_table()
        table.bulk_load([(1, 1)])
        first = table.statistics
        assert table.statistics is first  # cached
        table.insert((2, 2))
        assert table.statistics is not first  # invalidated by insert
        assert table.statistics.cardinality == 2


class TestResultTable:
    def test_cardinality_and_length(self):
        result = ResultTable(("x", "y"), 12, [(1, 2), (3, 4)])
        assert result.cardinality == 2
        assert result.table_length == 24
        assert list(result) == [(1, 2), (3, 4)]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            ResultTable(("x", "x"), 8, [])
