"""Unit tests for repro.engine.index."""

import pytest

from repro.engine.errors import CatalogError
from repro.engine.index import Index, IndexKind

from ..conftest import make_test_table


class TestIndexBuild:
    def test_nonclustered_lookup(self):
        table = make_test_table(rows=300)
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        value = table.row(17)[0]
        rids = index.lookup(value)
        assert 17 in rids
        assert all(table.row(r)[0] == value for r in rids)

    def test_missing_column_rejected(self):
        table = make_test_table(rows=10)
        with pytest.raises(CatalogError):
            Index("i", table, "zz", IndexKind.NONCLUSTERED)

    def test_clustered_requires_sorted_table(self):
        table = make_test_table(rows=50)
        with pytest.raises(CatalogError):
            Index("i", table, "a", IndexKind.CLUSTERED)

    def test_clustered_after_cluster_on(self):
        table = make_test_table(rows=50)
        table.cluster_on("a")
        index = Index("i", table, "a", IndexKind.CLUSTERED)
        assert index.kind is IndexKind.CLUSTERED

    def test_height_positive(self):
        table = make_test_table(rows=2000)
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        assert index.height >= 2


class TestRangeLookup:
    def test_range_matches_naive(self):
        table = make_test_table(rows=400)
        index = Index("i", table, "b", IndexKind.NONCLUSTERED)
        rids = index.range_lookup(20, 40)
        expected = sorted(
            i for i, row in enumerate(table) if 20 <= row[1] <= 40
        )
        assert sorted(rids) == expected

    def test_range_in_key_order(self):
        table = make_test_table(rows=400)
        index = Index("i", table, "b", IndexKind.NONCLUSTERED)
        rids = index.range_lookup(10, 90)
        keys = [table.row(r)[1] for r in rids]
        assert keys == sorted(keys)


class TestClusteringRatio:
    def test_clustered_ratio_is_one(self):
        table = make_test_table(rows=200)
        table.cluster_on("a")
        index = Index("i", table, "a", IndexKind.CLUSTERED)
        assert index.clustering_ratio() == 1.0

    def test_random_heap_ratio_low(self):
        table = make_test_table(rows=5000)
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        ratio = index.clustering_ratio()
        assert 0.0 <= ratio < 0.3

    def test_sorted_heap_nonclustered_ratio_high(self):
        table = make_test_table(rows=5000)
        table.cluster_on("a")
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        assert index.clustering_ratio() > 0.9

    def test_ratio_cached(self):
        table = make_test_table(rows=500)
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        assert index.clustering_ratio() == index.clustering_ratio()
        assert index._clustering_ratio is not None
