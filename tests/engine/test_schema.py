"""Unit tests for repro.engine.schema."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.schema import (
    Column,
    ColumnStatistics,
    TableSchema,
    TableStatistics,
)
from repro.engine.types import DataType


class TestColumn:
    def test_default_width_from_type(self):
        assert Column("a", DataType.INT).width == DataType.INT.default_width

    def test_explicit_width(self):
        assert Column("a", DataType.STR, 64).width == 64

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("1bad", DataType.INT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INT)

    def test_negative_width_rejected(self):
        with pytest.raises(SchemaError):
            Column("a", DataType.INT, -4)

    def test_validate_delegates_to_type(self):
        assert Column("a", DataType.FLOAT).validate(2) == 2.0


class TestTableSchema:
    @pytest.fixture
    def schema(self):
        return TableSchema(
            "t",
            [
                Column("a", DataType.INT),
                Column("b", DataType.FLOAT),
                Column("c", DataType.STR, 20),
            ],
        )

    def test_len_and_contains(self, schema):
        assert len(schema) == 3
        assert "a" in schema
        assert "z" not in schema

    def test_column_lookup(self, schema):
        assert schema.column("b").dtype is DataType.FLOAT

    def test_column_lookup_missing(self, schema):
        with pytest.raises(SchemaError):
            schema.column("nope")

    def test_position(self, schema):
        assert schema.position("a") == 0
        assert schema.position("c") == 2

    def test_position_missing(self, schema):
        with pytest.raises(SchemaError):
            schema.position("nope")

    def test_column_names_ordered(self, schema):
        assert schema.column_names == ("a", "b", "c")

    def test_tuple_length_sums_widths(self, schema):
        assert schema.tuple_length == 8 + 8 + 20

    def test_projected_tuple_length(self, schema):
        assert schema.projected_tuple_length(["a", "c"]) == 28

    def test_validate_row_roundtrip(self, schema):
        assert schema.validate_row([1, 2.5, "x"]) == (1, 2.5, "x")

    def test_validate_row_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row([1, 2.5])

    def test_project(self, schema):
        projected = schema.project(["c", "a"])
        assert projected.column_names == ("c", "a")
        assert projected.tuple_length == 28

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT), Column("a", DataType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_table_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name", [Column("a", DataType.INT)])


class TestColumnStatistics:
    def test_from_values(self):
        stats = ColumnStatistics.from_values([3, 1, 4, 1, 5])
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.distinct_count == 4

    def test_from_empty(self):
        stats = ColumnStatistics.from_values([])
        assert stats.minimum is None
        assert stats.maximum is None
        assert stats.distinct_count == 0

    def test_table_statistics_default_column(self):
        stats = TableStatistics(cardinality=10)
        assert stats.column("missing").minimum is None
