"""Unit tests for repro.engine.pages."""

import pytest

from repro.engine.pages import DEFAULT_PAGE_SIZE, PageLayout, ROW_OVERHEAD


class TestRowsPerPage:
    def test_small_tuples_pack_many(self):
        layout = PageLayout()
        assert layout.rows_per_page(8) == DEFAULT_PAGE_SIZE // (8 + ROW_OVERHEAD)

    def test_huge_tuple_still_one_per_page(self):
        layout = PageLayout(page_size=100)
        assert layout.rows_per_page(10_000) == 1

    def test_zero_tuple_length_rejected(self):
        with pytest.raises(ValueError):
            PageLayout().rows_per_page(0)


class TestPagesFor:
    def test_empty_table_has_no_pages(self):
        assert PageLayout().pages_for(0, 100) == 0

    def test_exact_fit(self):
        layout = PageLayout(page_size=100)
        rpp = layout.rows_per_page(12)  # 100 // 20 = 5
        assert layout.pages_for(rpp * 3, 12) == 3

    def test_partial_page_rounds_up(self):
        layout = PageLayout(page_size=100)
        rpp = layout.rows_per_page(12)
        assert layout.pages_for(rpp * 3 + 1, 12) == 4

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            PageLayout().pages_for(-1, 8)


class TestPagesForFraction:
    def test_zero_fraction_zero_pages(self):
        assert PageLayout().pages_for_fraction(1000, 8, 0.0) == 0

    def test_full_fraction_is_all_pages(self):
        layout = PageLayout()
        assert layout.pages_for_fraction(1000, 8, 1.0) == layout.pages_for(1000, 8)

    def test_tiny_fraction_at_least_one_page(self):
        assert PageLayout().pages_for_fraction(1000, 8, 1e-9) == 1

    def test_fraction_monotone(self):
        layout = PageLayout()
        pages = [layout.pages_for_fraction(100_000, 32, f / 10) for f in range(11)]
        assert pages == sorted(pages)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            PageLayout().pages_for_fraction(10, 8, 1.5)
