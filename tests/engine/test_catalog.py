"""Unit tests for the local catalog."""

import pytest

from repro.engine.catalog import LocalCatalog
from repro.engine.errors import CatalogError
from repro.engine.index import Index, IndexKind

from ..conftest import make_test_table


@pytest.fixture
def catalog():
    cat = LocalCatalog()
    cat.add_table(make_test_table("t1", rows=50))
    cat.add_table(make_test_table("t2", rows=50))
    return cat


class TestTables:
    def test_lookup(self, catalog):
        assert catalog.table("t1").name == "t1"
        assert catalog.has_table("t2")
        assert not catalog.has_table("t3")

    def test_table_names_sorted(self, catalog):
        assert catalog.table_names == ["t1", "t2"]

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_table(make_test_table("t1", rows=1))

    def test_missing_lookup_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("nope")

    def test_drop_table(self, catalog):
        catalog.drop_table("t1")
        assert not catalog.has_table("t1")

    def test_drop_missing_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")

    def test_drop_table_removes_its_indexes(self, catalog):
        index = Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED)
        catalog.add_index(index)
        catalog.drop_table("t1")
        with pytest.raises(CatalogError):
            catalog.index("i1")


class TestIndexes:
    def test_add_and_lookup(self, catalog):
        index = Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED)
        catalog.add_index(index)
        assert catalog.index("i1") is index

    def test_duplicate_index_rejected(self, catalog):
        index = Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED)
        catalog.add_index(index)
        with pytest.raises(CatalogError):
            catalog.add_index(Index("i1", catalog.table("t2"), "a", IndexKind.NONCLUSTERED))

    def test_indexes_for_filters_by_table(self, catalog):
        i1 = Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED)
        i2 = Index("i2", catalog.table("t2"), "b", IndexKind.NONCLUSTERED)
        catalog.add_index(i1)
        catalog.add_index(i2)
        assert catalog.indexes_for("t1") == [i1]
        assert catalog.indexes_for("t2") == [i2]

    def test_index_on(self, catalog):
        i1 = Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED)
        catalog.add_index(i1)
        assert catalog.index_on("t1", "a") is i1
        assert catalog.index_on("t1", "b") is None

    def test_drop_index(self, catalog):
        catalog.add_index(Index("i1", catalog.table("t1"), "a", IndexKind.NONCLUSTERED))
        catalog.drop_index("i1")
        assert catalog.index_on("t1", "a") is None

    def test_index_for_unknown_table_rejected(self, catalog):
        foreign = make_test_table("t9", rows=5)
        with pytest.raises(CatalogError):
            catalog.add_index(Index("i9", foreign, "a", IndexKind.NONCLUSTERED))
