"""Unit tests for repro.engine.predicate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.errors import QueryError
from repro.engine.predicate import (
    And,
    Comparison,
    KeyRange,
    Not,
    Or,
    TRUE,
    TruePredicate,
    conjoin,
    conjuncts,
    extract_key_range,
)
from repro.engine.schema import Column, ColumnStatistics, TableSchema, TableStatistics
from repro.engine.types import DataType

SCHEMA = TableSchema("t", [Column("a", DataType.INT), Column("b", DataType.INT)])


def stats(minimum=0, maximum=100, distinct=50, cardinality=1000):
    ts = TableStatistics(cardinality=cardinality)
    ts.columns["a"] = ColumnStatistics(minimum, maximum, distinct)
    ts.columns["b"] = ColumnStatistics(minimum, maximum, distinct)
    return ts


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("=", 6, False),
            ("!=", 6, True),
            ("<", 6, True),
            ("<", 5, False),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 5, True),
            (">=", 6, False),
        ],
    )
    def test_comparison_ops(self, op, value, expected):
        assert Comparison("a", op, value).evaluate((5, 0), SCHEMA) is expected

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~", 1)

    def test_and_or_not(self):
        p = And(Comparison("a", ">", 1), Comparison("b", "<", 10))
        assert p.evaluate((5, 5), SCHEMA)
        assert not p.evaluate((0, 5), SCHEMA)
        q = Or(Comparison("a", "=", 9), Comparison("b", "=", 9))
        assert q.evaluate((9, 0), SCHEMA)
        assert q.evaluate((0, 9), SCHEMA)
        assert not q.evaluate((0, 0), SCHEMA)
        assert Not(q).evaluate((0, 0), SCHEMA)

    def test_true_predicate(self):
        assert TRUE.evaluate((1, 2), SCHEMA)
        assert TRUE.columns() == set()

    def test_operator_sugar(self):
        p = Comparison("a", ">", 1) & Comparison("b", "<", 5)
        assert isinstance(p, And)
        q = Comparison("a", ">", 1) | Comparison("b", "<", 5)
        assert isinstance(q, Or)
        assert isinstance(~q, Not)

    def test_columns_collected(self):
        p = And(Comparison("a", ">", 1), Not(Comparison("b", "=", 2)))
        assert p.columns() == {"a", "b"}

    def test_validate_unknown_column(self):
        with pytest.raises(QueryError):
            Comparison("zz", "=", 1).validate(SCHEMA)


class TestSelectivity:
    def test_equality_uses_distinct_count(self):
        assert Comparison("a", "=", 5).selectivity(stats(distinct=50)) == pytest.approx(
            1 / 50
        )

    def test_inequality_complement(self):
        assert Comparison("a", "!=", 5).selectivity(
            stats(distinct=50)
        ) == pytest.approx(1 - 1 / 50)

    def test_range_interpolates(self):
        assert Comparison("a", "<=", 25).selectivity(stats(0, 100)) == pytest.approx(
            0.25
        )
        assert Comparison("a", ">=", 25).selectivity(stats(0, 100)) == pytest.approx(
            0.75
        )

    def test_range_clamped_to_unit_interval(self):
        assert Comparison("a", "<=", 1000).selectivity(stats(0, 100)) == 1.0
        assert Comparison("a", "<=", -5).selectivity(stats(0, 100)) == 0.0

    def test_no_stats_falls_back_to_magic(self):
        empty = TableStatistics(cardinality=0)
        assert Comparison("a", "<", 1).selectivity(empty) == pytest.approx(1 / 3)

    def test_degenerate_single_value_column(self):
        s = stats(5, 5)
        assert Comparison("a", "<=", 5).selectivity(s) == 1.0
        assert Comparison("a", "<", 5).selectivity(s) == 0.0

    def test_and_multiplies(self):
        p = And(Comparison("a", "<=", 50), Comparison("b", "<=", 50))
        assert p.selectivity(stats(0, 100)) == pytest.approx(0.25)

    def test_or_inclusion_exclusion(self):
        p = Or(Comparison("a", "<=", 50), Comparison("b", "<=", 50))
        assert p.selectivity(stats(0, 100)) == pytest.approx(0.75)

    def test_not_complements(self):
        p = Not(Comparison("a", "<=", 25))
        assert p.selectivity(stats(0, 100)) == pytest.approx(0.75)

    def test_true_selectivity(self):
        assert TRUE.selectivity(stats()) == 1.0

    def test_selectivity_in_unit_interval(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            s = Comparison("a", op, 30).selectivity(stats())
            assert 0.0 <= s <= 1.0


class TestConjuncts:
    def test_flattens_nested_ands(self):
        p = And(And(Comparison("a", ">", 1), Comparison("a", "<", 9)), TRUE)
        terms = conjuncts(p)
        assert len(terms) == 2

    def test_conjoin_empty_is_true(self):
        assert isinstance(conjoin([]), TruePredicate)

    def test_conjoin_roundtrip(self):
        terms = [Comparison("a", ">", 1), Comparison("b", "<", 9)]
        assert conjuncts(conjoin(terms)) == terms


class TestExtractKeyRange:
    def test_no_sargable_terms(self):
        rng, residual = extract_key_range(Comparison("b", "<", 5), "a")
        assert rng is None
        assert residual == Comparison("b", "<", 5)

    def test_single_lower_bound(self):
        rng, residual = extract_key_range(Comparison("a", ">", 5), "a")
        assert rng == KeyRange(5, None, False, True)
        assert isinstance(residual, TruePredicate)

    def test_two_sided_range(self):
        p = And(Comparison("a", ">=", 5), Comparison("a", "<", 10))
        rng, residual = extract_key_range(p, "a")
        assert rng == KeyRange(5, 10, True, False)
        assert isinstance(residual, TruePredicate)

    def test_point_from_equality(self):
        rng, _ = extract_key_range(Comparison("a", "=", 7), "a")
        assert rng.is_point

    def test_residual_keeps_other_columns(self):
        p = And(Comparison("a", "<=", 10), Comparison("b", "=", 1))
        rng, residual = extract_key_range(p, "a")
        assert rng == KeyRange(None, 10, True, True)
        assert residual == Comparison("b", "=", 1)

    def test_or_is_not_sargable(self):
        p = Or(Comparison("a", "<", 5), Comparison("a", ">", 50))
        rng, residual = extract_key_range(p, "a")
        assert rng is None
        assert residual is p

    def test_not_equal_is_not_sargable(self):
        rng, residual = extract_key_range(Comparison("a", "!=", 5), "a")
        assert rng is None

    def test_tightest_bounds_win(self):
        p = And(Comparison("a", ">", 3), Comparison("a", ">=", 7))
        rng, _ = extract_key_range(p, "a")
        assert rng.low == 7 and rng.low_inclusive

    def test_equality_never_loosens_an_exclusive_bound(self):
        # a<1 AND a=1 is empty: the range must stay [1, 1), not widen
        # to the point [1, 1] (regression: the = branch used to flip an
        # exclusive bound at the same key back to inclusive).
        rng, _ = extract_key_range(
            And(Comparison("a", "<", 1), Comparison("a", "=", 1)), "a"
        )
        assert rng == KeyRange(1, 1, True, False)
        rng, _ = extract_key_range(
            And(Comparison("a", ">", 1), Comparison("a", "=", 1)), "a"
        )
        assert rng == KeyRange(1, 1, False, True)

    def test_equality_intersects_with_disjoint_bounds(self):
        # a=5 AND a<3: the bounds cross, so the range selects nothing.
        rng, _ = extract_key_range(
            And(Comparison("a", "=", 5), Comparison("a", "<", 3)), "a"
        )
        assert rng.low > rng.high
        rng, _ = extract_key_range(
            And(Comparison("a", "=", 2), Comparison("a", "=", 4)), "a"
        )
        assert rng.low > rng.high

    def test_key_range_flags(self):
        assert KeyRange(1, 1).is_point
        assert KeyRange(1, None).is_bounded
        assert not KeyRange().is_bounded


@settings(max_examples=50, deadline=None)
@given(
    low=st.integers(0, 100),
    width=st.integers(0, 100),
    rows=st.lists(st.tuples(st.integers(0, 200), st.integers(0, 200)), max_size=60),
)
def test_property_extracted_range_equivalent_to_predicate(low, width, rows):
    """KeyRange + residual together must accept exactly the original rows."""
    predicate = And(
        And(Comparison("a", ">=", low), Comparison("a", "<=", low + width)),
        Comparison("b", "<", 150),
    )
    key_range, residual = extract_key_range(predicate, "a")
    assert key_range is not None
    for row in rows:
        in_range = (key_range.low is None or row[0] >= key_range.low) and (
            key_range.high is None or row[0] <= key_range.high
        )
        reconstructed = in_range and residual.evaluate(row, SCHEMA)
        assert reconstructed == predicate.evaluate(row, SCHEMA)
