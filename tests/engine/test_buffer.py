"""The buffer pool: LRU + windowed refcounts, charging, engine wiring."""

import pytest

from repro.engine.buffer import (
    BUFFER_HIT_STATES,
    BufferPool,
    HOT_THRESHOLD,
    WARM_THRESHOLD,
    charge_random_pages,
    charge_sequential_pages,
    data_page_of,
    hit_state_index,
    hit_state_label,
    table_page_keys,
)
from repro.engine.database import LocalDatabase
from repro.engine.metrics import ExecutionMetrics
from repro.engine.schema import Column
from repro.engine.types import DataType


class TestHitStates:
    def test_thresholds_partition_the_unit_interval(self):
        assert hit_state_label(0.0) == "cold"
        assert hit_state_label(WARM_THRESHOLD - 1e-9) == "cold"
        assert hit_state_label(WARM_THRESHOLD) == "warm"
        assert hit_state_label(HOT_THRESHOLD - 1e-9) == "warm"
        assert hit_state_label(HOT_THRESHOLD) == "hot"
        assert hit_state_label(1.0) == "hot"

    def test_index_matches_label_order(self):
        for rate in (0.0, 0.5, 1.0):
            assert BUFFER_HIT_STATES[hit_state_index(rate)] == hit_state_label(rate)

    def test_rejects_rates_outside_unit_interval(self):
        with pytest.raises(ValueError):
            hit_state_label(-0.01)
        with pytest.raises(ValueError):
            hit_state_label(1.01)


class TestBufferPool:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_pages=0)
        with pytest.raises(ValueError):
            BufferPool(window=0)
        with pytest.raises(ValueError):
            BufferPool(evict_scan=0)

    def test_hit_then_miss_accounting(self):
        pool = BufferPool(capacity_pages=4)
        assert pool.access("a") is False
        assert pool.access("a") is True
        assert pool.access("b") is False
        assert pool.stats.logical_reads == 3
        assert pool.stats.hits == 1
        assert pool.stats.misses == 2
        assert pool.hit_rate == pytest.approx(1 / 3)
        assert len(pool) == 2 and "a" in pool and "c" not in pool

    def test_capacity_is_respected_and_lru_evicts(self):
        pool = BufferPool(capacity_pages=3, evict_scan=1)
        pool.access_many(["a", "b", "c"])
        pool.access("a")  # a becomes most recent; b is now coldest
        pool.access("d")  # evicts b
        assert len(pool) == 3
        assert "b" not in pool and all(k in pool for k in "acd")
        assert pool.stats.evictions == 1

    def test_windowed_refcount_protects_hot_page(self):
        # "h" is touched often; a one-pass scan of cold pages must evict
        # the scan's own pages, not the hot one.
        pool = BufferPool(capacity_pages=4, evict_scan=4)
        for _ in range(5):
            pool.access("h")
        pool.access_many(["s1", "s2", "s3"])  # pool now full, h is LRU-coldest
        pool.access("s4")
        assert "h" in pool  # refcount 5 beats the scan pages' 1
        assert "s1" not in pool

    def test_eviction_tie_breaks_toward_lru(self):
        pool = BufferPool(capacity_pages=3, evict_scan=3)
        pool.access_many(["a", "b", "c"])  # all refcounts equal
        pool.access("d")
        assert "a" not in pool  # first minimum = least recently used

    def test_determinism_pure_function_of_access_sequence(self):
        sequence = [("T", "r", i % 7) for i in range(200)] + [
            ("I", "ix", i % 5) for i in range(100)
        ]
        a = BufferPool(capacity_pages=6, window=32)
        b = BufferPool(capacity_pages=6, window=32)
        for key in sequence:
            a.access(key)
        b.access_many(sequence)
        assert a.resident_keys() == b.resident_keys()
        assert a.stats == b.stats

    def test_snapshot_restore_rewinds_exactly(self):
        pool = BufferPool(capacity_pages=4, window=16)
        pool.access_many(["a", "b", "c"])
        saved = pool.snapshot()
        pool.access_many(["d", "e", "f", "a"])
        pool.restore(saved)
        twin = BufferPool(capacity_pages=4, window=16)
        twin.access_many(["a", "b", "c"])
        assert pool.resident_keys() == twin.resident_keys()
        assert pool.stats == twin.stats
        # Replaying the same future from the restored state matches too.
        pool.access_many(["d", "e", "f", "a"])
        twin.access_many(["d", "e", "f", "a"])
        assert pool.resident_keys() == twin.resident_keys()
        assert pool.stats == twin.stats

    def test_clear_drops_pages_but_keeps_stats(self):
        pool = BufferPool(capacity_pages=4)
        pool.access_many(["a", "b"])
        pool.clear()
        assert len(pool) == 0
        assert pool.stats.logical_reads == 2
        pool.reset_stats()
        assert pool.stats.logical_reads == 0

    def test_page_key_helpers(self):
        assert list(table_page_keys("r", range(2))) == [("T", "r", 0), ("T", "r", 1)]
        assert data_page_of(0, 10) == 0
        assert data_page_of(19, 10) == 1


class TestCharging:
    def test_pool_off_sequential_matches_classic_count(self):
        metrics = ExecutionMetrics()
        charge_sequential_pages(metrics, None, "r", 7)
        assert metrics.sequential_page_reads == 7
        assert metrics.logical_page_reads == 7
        assert metrics.buffer_hits == 0

    def test_pool_off_random_matches_classic_count(self):
        metrics = ExecutionMetrics()
        charge_random_pages(metrics, None, count=5)
        assert metrics.random_page_reads == 5
        assert metrics.logical_page_reads == 5

    def test_pool_on_second_sweep_hits_memory(self):
        pool = BufferPool(capacity_pages=16)
        cold = ExecutionMetrics()
        charge_sequential_pages(cold, pool, "r", 8)
        warm = ExecutionMetrics()
        charge_sequential_pages(warm, pool, "r", 8)
        assert cold.sequential_page_reads == 8 and cold.buffer_hits == 0
        assert warm.sequential_page_reads == 0 and warm.buffer_hits == 8
        assert warm.logical_page_reads == 8
        assert warm.buffer_hit_rate == 1.0

    def test_pool_on_random_plays_concrete_keys(self):
        pool = BufferPool(capacity_pages=16)
        metrics = ExecutionMetrics()
        charge_random_pages(metrics, pool, keys=[("T", "r", 0), ("T", "r", 0)])
        assert metrics.random_page_reads == 1  # second touch is a hit
        assert metrics.buffer_hits == 1
        assert metrics.logical_page_reads == 2


def _tiny_db(buffer_pages):
    db = LocalDatabase("buf_db", noise_sigma=0.0, seed=1, buffer_pages=buffer_pages)
    rows = [(i, i % 10) for i in range(400)]
    db.create_table("t", [Column("a", DataType.INT), Column("b", DataType.INT)], rows)
    db.catalog.table("t").analyze()
    return db


class TestDatabaseWiring:
    def test_rescan_hits_buffer(self):
        db = _tiny_db(buffer_pages=64)
        cold = db.execute("select a from t where b < 5")
        warm = db.execute("select a from t where b < 5")
        assert cold.metrics.buffer_hits == 0
        assert warm.metrics.buffer_hits == warm.metrics.logical_page_reads
        assert warm.metrics.total_page_reads == 0
        assert warm.result.rows == cold.result.rows
        assert db.buffer_pool.hit_state() in BUFFER_HIT_STATES

    def test_pool_off_accounting_unchanged(self):
        with_pool = _tiny_db(buffer_pages=64)
        without = _tiny_db(buffer_pages=None)
        r_pool = with_pool.execute("select a from t where b < 5")
        r_plain = without.execute("select a from t where b < 5")
        # Cold pool: every logical read is physical, so the physical
        # counts match the classic statistical accounting exactly.
        assert r_pool.metrics.total_page_reads == r_plain.metrics.total_page_reads
        assert r_pool.result.rows == r_plain.result.rows
        assert without.buffer_pool is None

    def test_save_restore_state_includes_pool(self):
        db = _tiny_db(buffer_pages=64)
        db.execute("select a from t where b < 5")
        saved = db.save_state()
        resident = db.buffer_pool.resident_keys()
        db.execute("select a from t where b >= 5")
        db.restore_state(saved)
        assert db.buffer_pool.resident_keys() == resident
        # Re-executing from the rewound state reproduces the same hits.
        again = db.execute("select a from t where b >= 5")
        db.restore_state(saved)
        twice = db.execute("select a from t where b >= 5")
        assert again.metrics == twice.metrics
