"""Unit tests for the SQL front end."""

import pytest

from repro.engine.errors import SQLSyntaxError
from repro.engine.predicate import And, Comparison, Not, Or, TruePredicate
from repro.engine.query import JoinQuery, SelectQuery
from repro.engine.schema import Column, TableSchema
from repro.engine.sql import parse_query, tokenize
from repro.engine.types import DataType

SCHEMAS = {
    "r": TableSchema("r", [Column("a", DataType.INT), Column("b", DataType.INT)]),
    "s": TableSchema("s", [Column("b", DataType.INT), Column("c", DataType.INT)]),
}


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("select a from t where a >= 1.5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "keyword", "name", "keyword", "name", "op", "float"]

    def test_string_literal_with_escape(self):
        tokens = tokenize("a = 'it''s'")
        assert tokens[-1].kind == "string"

    def test_junk_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @ from t")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT A FROM T")
        assert tokens[0].value == "select"
        assert tokens[1].value == "A"  # identifiers keep their case


class TestUnaryParsing:
    def test_select_star(self):
        q = parse_query("select * from r")
        assert isinstance(q, SelectQuery)
        assert q.columns == ()
        assert isinstance(q.predicate, TruePredicate)

    def test_projection_list(self):
        q = parse_query("select a, b from r")
        assert q.columns == ("a", "b")

    def test_simple_where(self):
        q = parse_query("select a from r where b > 10")
        assert q.predicate == Comparison("b", ">", 10)

    def test_and_or_precedence(self):
        q = parse_query("select a from r where a = 1 or a = 2 and b = 3")
        # AND binds tighter than OR.
        assert isinstance(q.predicate, Or)
        assert isinstance(q.predicate.right, And)

    def test_parentheses_override(self):
        q = parse_query("select a from r where (a = 1 or a = 2) and b = 3")
        assert isinstance(q.predicate, And)
        assert isinstance(q.predicate.left, Or)

    def test_not(self):
        q = parse_query("select a from r where not a = 1")
        assert isinstance(q.predicate, Not)

    def test_neq_spellings(self):
        q1 = parse_query("select a from r where a != 1")
        q2 = parse_query("select a from r where a <> 1")
        assert q1.predicate == q2.predicate == Comparison("a", "!=", 1)

    def test_literal_types(self):
        q = parse_query("select a from r where a <= 2.5 and b = 3 and a != 'x'")
        comparisons = []

        def walk(p):
            if isinstance(p, Comparison):
                comparisons.append(p.value)
            elif isinstance(p, And):
                walk(p.left)
                walk(p.right)

        walk(q.predicate)
        assert comparisons == [2.5, 3, "x"]

    def test_trailing_junk_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a from r extra")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a r")

    def test_truncated_input_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a from r where a >")

    def test_wrong_qualifier_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select s.a from r")


class TestJoinParsing:
    def test_basic_join(self):
        q = parse_query("select r.a, s.c from r join s on r.b = s.b", SCHEMAS)
        assert isinstance(q, JoinQuery)
        assert (q.left, q.right) == ("r", "s")
        assert (q.left_column, q.right_column) == ("b", "b")
        assert q.columns == ("r.a", "s.c")

    def test_join_condition_reversed_normalizes(self):
        q = parse_query("select r.a from r join s on s.b = r.b", SCHEMAS)
        assert (q.left_column, q.right_column) == ("b", "b")

    def test_where_split_per_table(self):
        q = parse_query(
            "select r.a from r join s on r.b = s.b where a > 1 and c < 5", SCHEMAS
        )
        assert q.left_predicate == Comparison("a", ">", 1)
        assert q.right_predicate == Comparison("c", "<", 5)

    def test_ambiguous_column_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select r.a from r join s on r.b = s.b where b > 1", SCHEMAS)

    def test_qualified_where_disambiguates(self):
        q = parse_query(
            "select r.a from r join s on r.b = s.b where s.b > 1", SCHEMAS
        )
        assert q.right_predicate == Comparison("b", ">", 1)

    def test_cross_table_or_term_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query(
                "select r.a from r join s on r.b = s.b where a > 1 or c < 5",
                SCHEMAS,
            )

    def test_non_equality_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select r.a from r join s on r.b < s.b", SCHEMAS)

    def test_join_condition_same_table_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select r.a from r join s on r.a = r.b", SCHEMAS)

    def test_unresolvable_without_schemas(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a from r join s on b = c")

    def test_select_star_join(self):
        q = parse_query("select * from r join s on r.b = s.b", SCHEMAS)
        assert q.columns == ()


class TestNegativeLiterals:
    def test_negative_int(self):
        q = parse_query("select a from r where a >= -5")
        assert q.predicate == Comparison("a", ">=", -5)

    def test_negative_float(self):
        q = parse_query("select a from r where a < -2.5")
        assert q.predicate == Comparison("a", "<", -2.5)

    def test_negated_string_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a from r where a = -'x'")
