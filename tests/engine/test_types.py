"""Unit tests for repro.engine.types."""

import pytest

from repro.engine.errors import TypeError_
from repro.engine.types import DataType


class TestDataTypeValidation:
    def test_int_accepts_int(self):
        assert DataType.INT.validate(42) == 42

    def test_int_rejects_float(self):
        with pytest.raises(TypeError_):
            DataType.INT.validate(4.2)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError_):
            DataType.INT.validate(True)

    def test_int_rejects_string(self):
        with pytest.raises(TypeError_):
            DataType.INT.validate("42")

    def test_float_accepts_float(self):
        assert DataType.FLOAT.validate(3.5) == 3.5

    def test_float_widens_int(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeError_):
            DataType.FLOAT.validate(False)

    def test_str_accepts_str(self):
        assert DataType.STR.validate("abc") == "abc"

    def test_str_rejects_int(self):
        with pytest.raises(TypeError_):
            DataType.STR.validate(7)

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_none_rejected_everywhere(self, dtype):
        with pytest.raises(TypeError_):
            dtype.validate(None)


class TestDataTypeProperties:
    def test_python_types(self):
        assert DataType.INT.python_type is int
        assert DataType.FLOAT.python_type is float
        assert DataType.STR.python_type is str

    def test_default_widths_positive(self):
        for dtype in DataType:
            assert dtype.default_width > 0

    def test_numeric_types_comparable(self):
        assert DataType.INT.is_comparable_with(DataType.FLOAT)
        assert DataType.FLOAT.is_comparable_with(DataType.INT)

    def test_same_type_comparable(self):
        for dtype in DataType:
            assert dtype.is_comparable_with(dtype)

    def test_str_not_comparable_with_numeric(self):
        assert not DataType.STR.is_comparable_with(DataType.INT)
        assert not DataType.INT.is_comparable_with(DataType.STR)
