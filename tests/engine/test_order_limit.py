"""Unit tests for ORDER BY / LIMIT in queries, SQL, and execution."""

import pytest

from repro.engine.access import seq_scan
from repro.engine.errors import QueryError, SQLSyntaxError
from repro.engine.predicate import Comparison
from repro.engine.query import SelectQuery
from repro.engine.sql import parse_query

from ..conftest import make_test_table


@pytest.fixture
def table():
    return make_test_table(rows=300, seed=30)


class TestQueryShape:
    def test_defaults_off(self):
        query = SelectQuery("t")
        assert query.order_by == ()
        assert query.limit is None

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            SelectQuery("t", limit=-1)

    def test_validate_checks_order_columns(self, table):
        query = SelectQuery("t", ("a",), order_by=(("zz", True),))
        with pytest.raises(QueryError):
            query.validate(table.schema)

    def test_str_rendering(self):
        query = SelectQuery(
            "t",
            ("a",),
            Comparison("b", "<", 5),
            order_by=(("a", True), ("b", False)),
            limit=10,
        )
        text = str(query)
        assert "ORDER BY a, b DESC" in text
        assert "LIMIT 10" in text


class TestSQL:
    def test_parse_order_by(self):
        query = parse_query("select a from t order by a desc, b")
        assert query.order_by == (("a", False), ("b", True))

    def test_parse_limit(self):
        query = parse_query("select a from t where a > 1 limit 25")
        assert query.limit == 25

    def test_parse_asc_keyword(self):
        query = parse_query("select a from t order by a asc")
        assert query.order_by == (("a", True),)

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("select a from t limit 2.5")

    def test_order_by_join_rejected(self):
        from repro.engine.schema import Column, TableSchema
        from repro.engine.types import DataType

        schemas = {
            "r": TableSchema("r", [Column("a", DataType.INT)]),
            "s": TableSchema("s", [Column("a", DataType.INT)]),
        }
        with pytest.raises(SQLSyntaxError):
            parse_query("select r.a from r join s on r.a = s.a limit 5", schemas)

    def test_roundtrip_through_str(self):
        query = SelectQuery(
            "t", ("a", "b"), Comparison("c", ">", 2), (("b", False),), 7
        )
        reparsed = parse_query(str(query))
        assert reparsed.order_by == query.order_by
        assert reparsed.limit == query.limit


class TestExecution:
    def test_order_by_sorts_result(self, table):
        query = SelectQuery("t", ("a", "b"), order_by=(("a", True),))
        rows = seq_scan(table, query).result.rows
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_descending_order(self, table):
        query = SelectQuery("t", ("a",), order_by=(("a", False),))
        rows = seq_scan(table, query).result.rows
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_secondary_sort_key(self, table):
        query = SelectQuery("t", ("c", "a"), order_by=(("c", True), ("a", True)))
        rows = seq_scan(table, query).result.rows
        assert rows == sorted(rows)

    def test_limit_truncates_after_sort(self, table):
        query = SelectQuery("t", ("a",), order_by=(("a", True),), limit=5)
        execution = seq_scan(table, query)
        assert execution.result.cardinality == 5
        smallest = sorted(table.column_values("a"))[:5]
        assert [r[0] for r in execution.result.rows] == smallest

    def test_limit_zero(self, table):
        query = SelectQuery("t", ("a",), limit=0)
        assert seq_scan(table, query).result.cardinality == 0

    def test_limit_larger_than_result(self, table):
        query = SelectQuery("t", ("a",), Comparison("a", "<", 5), limit=10_000)
        execution = seq_scan(table, query)
        assert execution.result.cardinality == len(
            [r for r in table if r[0] < 5]
        )

    def test_sort_charged_in_metrics(self, table):
        plain = seq_scan(table, SelectQuery("t", ("a",)))
        ordered = seq_scan(table, SelectQuery("t", ("a",), order_by=(("a", True),)))
        assert plain.metrics.sort_comparisons == 0
        assert ordered.metrics.sort_comparisons > 0

    def test_tuples_output_reflects_limit(self, table):
        query = SelectQuery("t", ("a",), limit=3)
        execution = seq_scan(table, query)
        assert execution.metrics.tuples_output == 3

    def test_database_end_to_end(self, small_database):
        result = small_database.execute(
            "select a, b from t1 where b < 20 order by a desc limit 4"
        )
        assert result.cardinality <= 4
        values = [r[0] for r in result.result.rows]
        assert values == sorted(values, reverse=True)
