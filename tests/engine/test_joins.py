"""Unit tests for join methods: every algorithm must agree with the naive
reference join, while reporting algorithm-specific work."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.index import Index, IndexKind
from repro.engine.joins import (
    hash_join,
    index_nested_loop_join,
    naive_join,
    nested_loop_join,
    sort_merge_join,
)
from repro.engine.predicate import Comparison
from repro.engine.query import JoinQuery

from ..conftest import make_test_table


@pytest.fixture
def left():
    return make_test_table("l", rows=300, seed=10)


@pytest.fixture
def right():
    return make_test_table("r", rows=200, seed=11)


@pytest.fixture
def query():
    # Join on 'b' (range 0..99) so there are plenty of matches.
    return JoinQuery(
        "l",
        "r",
        "b",
        "b",
        ("l.a", "r.c"),
        Comparison("a", "<", 700),
        Comparison("c", ">", 2),
    )


ALL_METHODS = [nested_loop_join, sort_merge_join, hash_join]


class TestCorrectness:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_naive_join(self, method, left, right, query):
        expected = sorted(naive_join(left, right, query).result.rows)
        got = sorted(method(left, right, query).result.rows)
        assert got == expected

    def test_inlj_matches_naive_join(self, left, right, query):
        index = Index("ri", right, "b", IndexKind.NONCLUSTERED)
        expected = sorted(naive_join(left, right, query).result.rows)
        got = sorted(index_nested_loop_join(left, right, query, index).result.rows)
        assert got == expected

    def test_inlj_with_clustered_inner(self, left, right, query):
        right.cluster_on("b")
        index = Index("ri", right, "b", IndexKind.CLUSTERED)
        expected = sorted(naive_join(left, right, query).result.rows)
        got = sorted(index_nested_loop_join(left, right, query, index).result.rows)
        assert got == expected

    def test_empty_result_when_no_matches(self, left, right):
        query = JoinQuery("l", "r", "b", "b", left_predicate=Comparison("a", "<", -1))
        assert hash_join(left, right, query).result.cardinality == 0


class TestFiveWayAgreement:
    def test_all_five_methods_identical_result_sets(self, left, right, query):
        """Every join method — naive included — yields the same multiset."""
        right.cluster_on("b")
        index = Index("ri", right, "b", IndexKind.CLUSTERED)
        executions = {
            "naive_join": naive_join(left, right, query),
            "nested_loop_join": nested_loop_join(left, right, query),
            "sort_merge_join": sort_merge_join(left, right, query),
            "hash_join": hash_join(left, right, query),
            "index_nested_loop_join": index_nested_loop_join(
                left, right, query, index
            ),
        }
        reference = sorted(executions["naive_join"].result.rows)
        for name, execution in executions.items():
            assert sorted(execution.result.rows) == reference, name
            assert execution.method == name
            assert execution.result.column_names == ("l.a", "r.c")

    def test_naive_join_uses_shared_page_accounting(self, left, right, query):
        execution = naive_join(left, right, query)
        qualifying_left = len([r for r in left if r[0] < 700])
        expected_pages = left.num_pages + qualifying_left * right.num_pages
        assert execution.metrics.sequential_page_reads == expected_pages
        assert execution.metrics.logical_page_reads == expected_pages
        assert execution.metrics.tuples_output == execution.result.cardinality
        assert execution.left_info.intermediate_cardinality == qualifying_left

    def test_naive_join_rescans_hit_the_buffer_pool(self, left, right, query):
        from repro.engine.buffer import BufferPool

        pool = BufferPool(capacity_pages=512)
        execution = naive_join(left, right, query, pool)
        baseline = naive_join(left, right, query)
        # Rescans of the (small) inner relation are all buffer hits, so
        # physical I/O collapses to one sweep of each operand...
        assert (
            execution.metrics.sequential_page_reads
            == left.num_pages + right.num_pages
        )
        assert execution.metrics.buffer_hits > 0
        # ...while the logical ledger and the rows are unchanged.
        assert (
            execution.metrics.logical_page_reads
            == baseline.metrics.logical_page_reads
        )
        assert execution.result.rows == baseline.result.rows


class TestWorkAccounting:
    def test_all_methods_scan_operands(self, left, right, query):
        for method in ALL_METHODS:
            metrics = method(left, right, query).metrics
            assert metrics.sequential_page_reads >= left.num_pages + right.num_pages
            assert metrics.tuples_read >= left.cardinality + right.cardinality

    def test_nlj_charges_pairwise_evaluations(self, left, right, query):
        nlj = nested_loop_join(left, right, query)
        ni1 = nlj.left_info.intermediate_cardinality
        ni2 = nlj.right_info.intermediate_cardinality
        assert nlj.metrics.tuples_evaluated >= ni1 * ni2

    def test_smj_charges_sort_comparisons(self, left, right, query):
        smj = sort_merge_join(left, right, query)
        assert smj.metrics.sort_comparisons > 0
        assert hash_join(left, right, query).metrics.sort_comparisons == 0

    def test_hj_charges_hash_operations(self, left, right, query):
        hj = hash_join(left, right, query)
        ni1 = hj.left_info.intermediate_cardinality
        ni2 = hj.right_info.intermediate_cardinality
        assert hj.metrics.hash_operations == ni1 + ni2

    def test_inlj_skips_inner_scan(self, left, right, query):
        index = Index("ri", right, "b", IndexKind.NONCLUSTERED)
        inlj = index_nested_loop_join(left, right, query, index)
        # Only the outer is scanned sequentially.
        assert inlj.metrics.sequential_page_reads == left.num_pages
        assert inlj.metrics.random_page_reads > 0

    def test_intermediate_cardinalities_reported(self, left, right, query):
        hj = hash_join(left, right, query)
        expected_left = len([r for r in left if r[0] < 700])
        expected_right = len([r for r in right if r[2] > 2])
        assert hj.left_info.intermediate_cardinality == expected_left
        assert hj.right_info.intermediate_cardinality == expected_right

    def test_hash_cheaper_than_nlj_in_evaluations(self, left, right, query):
        nlj = nested_loop_join(left, right, query).metrics
        hj = hash_join(left, right, query).metrics
        assert hj.tuples_evaluated < nlj.tuples_evaluated


class TestINLJValidation:
    def test_wrong_table_rejected(self, left, right, query):
        index = Index("li", left, "b", IndexKind.NONCLUSTERED)
        with pytest.raises(ExecutionError):
            index_nested_loop_join(left, right, query, index)

    def test_wrong_column_rejected(self, left, right, query):
        index = Index("ri", right, "a", IndexKind.NONCLUSTERED)
        with pytest.raises(ExecutionError):
            index_nested_loop_join(left, right, query, index)


class TestProjection:
    def test_output_column_order_preserved(self, left, right):
        query = JoinQuery("l", "r", "b", "b", ("r.c", "l.a"))
        result = hash_join(left, right, query).result
        assert result.column_names == ("r.c", "l.a")

    def test_default_projection_all_columns(self, left, right):
        query = JoinQuery("l", "r", "b", "b")
        result = hash_join(left, right, query).result
        assert len(result.column_names) == len(left.schema) + len(right.schema)
