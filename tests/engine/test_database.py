"""Unit tests for LocalDatabase: DDL, planning, timed execution."""

import pytest

from repro.engine.database import LocalDatabase
from repro.engine.errors import CatalogError
from repro.engine.optimizer import JoinPlan, UnaryPlan
from repro.engine.predicate import Comparison
from repro.engine.query import JoinQuery, SelectQuery
from repro.engine.schema import Column
from repro.engine.types import DataType
from repro.env.environment import dynamic_uniform_environment


class TestDDL:
    def test_create_table_with_rows(self, small_database):
        assert small_database.catalog.table("t1").cardinality == 600

    def test_insert_maintains_indexes(self, small_database):
        small_database.insert("t1", (5, 6, 7))
        index = small_database.catalog.index("t1_a")
        rids = index.lookup(5)
        assert any(small_database.catalog.table("t1").row(r) == (5, 6, 7) for r in rids)

    def test_clustered_index_sorts_table(self, small_database):
        values = small_database.catalog.table("t2").column_values("b")
        assert values == sorted(values)

    def test_second_clustered_index_rejected(self, small_database):
        with pytest.raises(CatalogError):
            small_database.create_index("t2_c2", "t2", "c", clustered=True)

    def test_clustering_rebuilds_other_indexes(self):
        db = LocalDatabase("db", noise_sigma=0.0)
        db.create_table(
            "t",
            [Column("a", DataType.INT), Column("b", DataType.INT)],
            [(3, 30), (1, 10), (2, 20)],
        )
        db.create_index("t_a", "t", "a")
        db.create_index("t_b", "t", "b", clustered=True)
        # After clustering on b, the a-index must map to the new row ids.
        index = db.catalog.index("t_a")
        (rid,) = index.lookup(3)
        assert db.catalog.table("t").row(rid) == (3, 30)


class TestPlanning:
    def test_plan_unary(self, small_database):
        plan = small_database.plan("select a from t1 where a < 20")
        assert isinstance(plan, UnaryPlan)
        assert plan.method == "nonclustered_index_scan"

    def test_plan_join(self, small_database):
        plan = small_database.plan(
            JoinQuery("t1", "t2", "c", "c")
        )
        assert isinstance(plan, JoinPlan)

    def test_parse_resolves_schemas(self, small_database):
        query = small_database.parse(
            "select t1.a from t1 join t2 on t1.c = t2.c where t1.a < 5"
        )
        assert isinstance(query, JoinQuery)
        # Qualifiers are stripped for per-operand evaluation.
        assert query.left_predicate == Comparison("a", "<", 5)

    def test_parse_ambiguous_join_column_rejected(self, small_database):
        from repro.engine.errors import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            small_database.parse("select t1.a from t1 join t2 on c = c")


class TestExecution:
    def test_execute_unary_rows_correct(self, small_database):
        result = small_database.execute("select a, b from t1 where b < 10")
        table = small_database.catalog.table("t1")
        expected = sorted((r[0], r[1]) for r in table if r[1] < 10)
        assert sorted(result.result.rows) == expected

    def test_execute_join_rows_correct(self, small_database):
        from repro.engine.joins import naive_join

        query = JoinQuery(
            "t1", "t2", "c", "c", ("t1.a", "t2.b"), Comparison("a", "<", 100)
        )
        result = small_database.execute(query)
        t1 = small_database.catalog.table("t1")
        t2 = small_database.catalog.table("t2")
        assert sorted(result.result.rows) == sorted(naive_join(t1, t2, query).result.rows)

    def test_elapsed_positive_and_breakdown_consistent(self, small_database):
        result = small_database.execute("select a from t1")
        assert result.elapsed > 0
        assert result.elapsed == pytest.approx(
            result.breakdown.base_time
            * result.breakdown.slowdown
            * result.breakdown.noise
        )

    def test_execution_advances_clock(self, small_database):
        before = small_database.environment.now
        result = small_database.execute("select a from t1")
        assert small_database.environment.now == pytest.approx(before + result.elapsed)

    def test_static_env_slowdown_is_one(self, small_database):
        result = small_database.execute("select a from t1")
        assert result.breakdown.slowdown == 1.0
        assert result.contention_level == 0.0

    def test_noiseless_database_deterministic(self, small_database):
        r1 = small_database.execute("select a from t1 where b < 50")
        r2 = small_database.execute("select a from t1 where b < 50")
        assert r1.elapsed == pytest.approx(r2.elapsed)

    def test_dynamic_env_inflates_cost(self):
        rows = [(i % 1000, i % 100) for i in range(2000)]
        cols = [Column("a", DataType.INT), Column("b", DataType.INT)]
        static_db = LocalDatabase("s", noise_sigma=0.0)
        static_db.create_table("t", cols, rows)
        dyn_db = LocalDatabase(
            "d", environment=dynamic_uniform_environment(seed=3), noise_sigma=0.0
        )
        dyn_db.create_table("t", cols, rows)
        # Walk the dynamic environment to a loaded epoch.
        dyn_db.environment.advance(300.0)
        while dyn_db.environment.level() < 0.5:
            dyn_db.environment.advance(30.0)
        q = SelectQuery("t", ("a",))
        assert dyn_db.execute(q).elapsed > static_db.execute(q).elapsed

    def test_infos_per_query_shape(self, small_database):
        unary = small_database.execute("select a from t1")
        assert len(unary.infos) == 1
        join = small_database.execute(JoinQuery("t1", "t2", "c", "c"))
        assert len(join.infos) == 2

    def test_invalid_noise_sigma_rejected(self):
        with pytest.raises(ValueError):
            LocalDatabase("x", noise_sigma=-0.1)


class TestSimulationForking:
    def test_restore_rewinds_clock_and_rng(self):
        from repro.engine.database import LocalDatabase
        from repro.engine.schema import Column
        from repro.engine.types import DataType
        from repro.env.environment import dynamic_uniform_environment

        db = LocalDatabase(
            "fork", environment=dynamic_uniform_environment(seed=9), seed=9
        )
        db.create_table(
            "t",
            [Column("a", DataType.INT)],
            [(i % 100,) for i in range(1500)],
        )
        db.environment.advance(500.0)
        snapshot = db.save_state()
        first = db.execute("select a from t where a < 50")
        db.restore_state(snapshot)
        second = db.execute("select a from t where a < 50")
        # Identical state -> identical contention, noise, and elapsed.
        assert second.elapsed == pytest.approx(first.elapsed)
        assert second.contention_level == first.contention_level
        assert db.environment.now == pytest.approx(
            snapshot["time"] + second.elapsed
        )

    def test_clock_reset_validation(self):
        from repro.env.clock import SimulationClock

        clock = SimulationClock(10.0)
        clock.reset(3.0)
        assert clock.now == 3.0
        with pytest.raises(ValueError):
            clock.reset(-1.0)
