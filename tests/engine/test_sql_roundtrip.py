"""Property tests: query rendering and re-parsing agree.

`str(query)` is used in logs, catalogs, and probe descriptions; these
tests pin down that the rendered SQL parses back to a query that behaves
identically (same predicate decisions on every row).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.predicate import And, Comparison, Or, Predicate, TRUE
from repro.engine.query import SelectQuery
from repro.engine.schema import Column, TableSchema
from repro.engine.sql import parse_query
from repro.engine.types import DataType

SCHEMA = TableSchema(
    "t", [Column("a", DataType.INT), Column("b", DataType.INT), Column("c", DataType.INT)]
)

comparison = st.builds(
    Comparison,
    column=st.sampled_from(["a", "b", "c"]),
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=st.integers(-100, 100),
)


def predicates(depth: int = 2):
    if depth == 0:
        return comparison
    sub = predicates(depth - 1)
    return st.one_of(
        comparison,
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
    )


@settings(max_examples=80, deadline=None)
@given(
    predicate=predicates(),
    columns=st.lists(st.sampled_from(["a", "b", "c"]), unique=True, max_size=3),
    rows=st.lists(
        st.tuples(
            st.integers(-120, 120), st.integers(-120, 120), st.integers(-120, 120)
        ),
        max_size=25,
    ),
)
def test_rendered_query_reparses_equivalently(predicate, columns, rows):
    query = SelectQuery("t", tuple(columns), predicate)
    reparsed = parse_query(str(query))
    assert isinstance(reparsed, SelectQuery)
    assert reparsed.table == "t"
    assert reparsed.columns == query.columns
    for row in rows:
        assert reparsed.predicate.evaluate(row, SCHEMA) == predicate.evaluate(
            row, SCHEMA
        )


@settings(max_examples=30, deadline=None)
@given(columns=st.lists(st.sampled_from(["a", "b", "c"]), unique=True, min_size=1))
def test_predicate_free_query_roundtrip(columns):
    query = SelectQuery("t", tuple(columns), TRUE)
    reparsed = parse_query(str(query))
    assert reparsed.columns == query.columns
    assert isinstance(reparsed.predicate, Predicate)
    row = (1, 2, 3)
    assert reparsed.predicate.evaluate(row, SCHEMA)
