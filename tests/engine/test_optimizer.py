"""Unit tests for local access-path selection rules."""

import pytest

from repro.engine.index import Index, IndexKind
from repro.engine.joins import naive_join
from repro.engine.optimizer import (
    NONCLUSTERED_SELECTIVITY_LIMIT,
    choose_join_plan,
    choose_unary_plan,
)
from repro.engine.predicate import Comparison
from repro.engine.query import JoinQuery, SelectQuery

from ..conftest import make_test_table


@pytest.fixture
def table():
    t = make_test_table(rows=1000, seed=20)
    t.analyze()
    return t


class TestUnaryRules:
    def test_no_predicate_means_seq_scan(self, table):
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        plan = choose_unary_plan(table, [index], SelectQuery("t"))
        assert plan.method == "seq_scan"

    def test_selective_range_uses_nonclustered_index(self, table):
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        query = SelectQuery("t", ("a",), Comparison("a", "<", 30))  # ~3%
        plan = choose_unary_plan(table, [index], query)
        assert plan.method == "nonclustered_index_scan"
        assert plan.index is index

    def test_wide_range_falls_back_to_seq_scan(self, table):
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        query = SelectQuery("t", ("a",), Comparison("a", "<", 900))  # ~90%
        plan = choose_unary_plan(table, [index], query)
        assert plan.method == "seq_scan"

    def test_clustered_index_always_preferred_when_sargable(self, table):
        table.cluster_on("a")
        ci = Index("ci", table, "a", IndexKind.CLUSTERED)
        query = SelectQuery("t", ("a",), Comparison("a", "<", 900))
        plan = choose_unary_plan(table, [ci], query)
        assert plan.method == "clustered_index_scan"

    def test_predicate_on_unindexed_column_seq_scans(self, table):
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        query = SelectQuery("t", ("a",), Comparison("b", "<", 5))
        plan = choose_unary_plan(table, [index], query)
        assert plan.method == "seq_scan"

    def test_selectivity_limit_is_boundary(self, table):
        # Just inside the limit -> index; far outside -> scan.
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        cut_in = int(1000 * NONCLUSTERED_SELECTIVITY_LIMIT * 0.5)
        cut_out = int(1000 * NONCLUSTERED_SELECTIVITY_LIMIT * 3)
        assert (
            choose_unary_plan(
                table, [index], SelectQuery("t", ("a",), Comparison("a", "<", cut_in))
            ).method
            == "nonclustered_index_scan"
        )
        assert (
            choose_unary_plan(
                table, [index], SelectQuery("t", ("a",), Comparison("a", "<", cut_out))
            ).method
            == "seq_scan"
        )

    def test_plan_executes(self, table):
        index = Index("i", table, "a", IndexKind.NONCLUSTERED)
        query = SelectQuery("t", ("a",), Comparison("a", "<", 30))
        plan = choose_unary_plan(table, [index], query)
        execution = plan.execute(table, query)
        assert all(row[0] < 30 for row in execution.result.rows)


class TestJoinRules:
    @pytest.fixture
    def left(self):
        t = make_test_table("l", rows=900, seed=21)
        t.analyze()
        return t

    @pytest.fixture
    def right(self):
        t = make_test_table("r", rows=800, seed=22)
        t.analyze()
        return t

    def test_no_indexes_means_hash_join(self, left, right):
        query = JoinQuery("l", "r", "b", "b")
        plan = choose_join_plan(left, right, [], [], query)
        assert plan.method == "hash_join"

    def test_selective_outer_with_inner_index_uses_inlj(self, left, right):
        index = Index("ri", right, "b", IndexKind.NONCLUSTERED)
        query = JoinQuery(
            "l", "r", "b", "b", left_predicate=Comparison("a", "<", 20)
        )
        plan = choose_join_plan(left, right, [], [index], query)
        assert plan.method == "index_nested_loop_join"
        assert not plan.swapped

    def test_index_on_left_swaps_operands(self, left, right):
        index = Index("li", left, "b", IndexKind.NONCLUSTERED)
        query = JoinQuery(
            "l", "r", "b", "b", right_predicate=Comparison("a", "<", 20)
        )
        plan = choose_join_plan(left, right, [index], [], query)
        assert plan.method == "index_nested_loop_join"
        assert plan.swapped

    def test_unselective_outer_prefers_hash(self, left, right):
        index = Index("ri", right, "b", IndexKind.NONCLUSTERED)
        query = JoinQuery("l", "r", "b", "b")  # whole outer
        plan = choose_join_plan(left, right, [], [index], query)
        assert plan.method == "hash_join"

    def test_both_clustered_means_sort_merge(self, left, right):
        left.cluster_on("b")
        right.cluster_on("b")
        li = Index("li", left, "b", IndexKind.CLUSTERED)
        ri = Index("ri", right, "b", IndexKind.CLUSTERED)
        query = JoinQuery("l", "r", "b", "b")
        plan = choose_join_plan(left, right, [li], [ri], query)
        assert plan.method == "sort_merge_join"

    def test_swapped_plan_result_matches_naive(self, left, right):
        index = Index("li", left, "b", IndexKind.NONCLUSTERED)
        query = JoinQuery(
            "l",
            "r",
            "b",
            "b",
            ("l.a", "r.c"),
            right_predicate=Comparison("a", "<", 20),
        )
        plan = choose_join_plan(left, right, [index], [], query)
        assert plan.swapped
        execution = plan.execute(left, right, query)
        assert sorted(execution.result.rows) == sorted(naive_join(left, right, query).result.rows)
        # Output column order must be the original, un-swapped order.
        assert execution.result.column_names == ("l.a", "r.c")
