"""Whole-engine property tests: any generated query, any access path,
always the same answer as the naive reference evaluation."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.access import filter_rows
from repro.engine.database import LocalDatabase
from repro.engine.predicate import And, Comparison, Not, Or
from repro.engine.query import SelectQuery
from repro.engine.schema import Column
from repro.engine.types import DataType


def build_db() -> LocalDatabase:
    db = LocalDatabase("prop_db", noise_sigma=0.0, seed=42)
    rng = np.random.default_rng(42)
    db.create_table(
        "t",
        [
            Column("a", DataType.INT),
            Column("b", DataType.INT),
            Column("c", DataType.INT),
        ],
        [
            (
                int(rng.integers(0, 500)),
                int(rng.integers(0, 60)),
                int(rng.integers(0, 8)),
            )
            for _ in range(700)
        ],
    )
    db.create_index("t_a", "t", "a")
    db.analyze()
    return db


DB = build_db()
TABLE = DB.catalog.table("t")

comparison = st.builds(
    Comparison,
    column=st.sampled_from(["a", "b", "c"]),
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=st.integers(-10, 520),
)
predicate = st.recursive(
    comparison,
    lambda sub: st.one_of(
        st.builds(And, sub, sub), st.builds(Or, sub, sub), st.builds(Not, sub)
    ),
    max_leaves=6,
)


@settings(max_examples=80, deadline=None)
@given(
    pred=predicate,
    columns=st.lists(st.sampled_from(["a", "b", "c"]), unique=True, max_size=3),
    limit=st.one_of(st.none(), st.integers(0, 50)),
    order_col=st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
)
def test_property_executed_result_matches_naive(pred, columns, limit, order_col):
    """Whatever plan the optimizer picks, the rows match the naive
    filter+project (+sort+limit) result on everything that is
    plan-independent."""
    order_by = ((order_col, True),) if order_col else ()
    query = SelectQuery("t", tuple(columns), pred, order_by=order_by, limit=limit)
    result = DB.execute(query)

    out_cols = query.output_columns(TABLE.schema)
    positions = [TABLE.schema.position(c) for c in out_cols]
    matching = filter_rows(TABLE, pred)
    projected = [tuple(r[p] for p in positions) for r in matching]
    rows = result.result.rows

    if limit is None:
        assert sorted(rows) == sorted(projected)
    else:
        # WHICH qualifying rows survive a LIMIT is plan-dependent (a seq
        # scan and an index scan emit rows in different orders; under
        # ORDER BY, ties at the cutoff are plan-dependent too).  Assert
        # the plan-independent facts instead: the count, and that every
        # returned row is a qualifying row, with multiplicity.
        assert len(rows) == min(limit, len(projected))
        assert not Counter(rows) - Counter(projected)
    if order_col:
        # The multiset of sort keys in any correct answer is exactly the
        # sorted (prefix of the) qualifying keys — even with ties.
        pos = TABLE.schema.position(order_col)
        expected_keys = sorted(r[pos] for r in matching)
        if limit is not None:
            expected_keys = expected_keys[:limit]
        if order_col in out_cols:
            key_pos = out_cols.index(order_col)
            assert [r[key_pos] for r in rows] == expected_keys
    assert result.cardinality == len(rows)

    # Physical sanity, whatever the plan.
    assert result.metrics.tuples_output == result.cardinality
    assert result.metrics.tuples_read >= result.metrics.tuples_output
    assert result.elapsed > 0


@settings(max_examples=40, deadline=None)
@given(pred=predicate)
def test_property_plan_agrees_with_classification(pred):
    """The executed plan is always the one classification predicted."""
    from repro.core.classification import classify

    query = SelectQuery("t", ("a",), pred)
    predicted = classify(DB, query)
    assert DB.execute(query).plan == predicted.access_method
