"""Unit tests for unary access methods: correctness vs a naive reference
plus cost-accounting sanity."""

import pytest

from repro.engine.access import (
    clustered_index_scan,
    filter_rows,
    nonclustered_index_scan,
    seq_scan,
)
from repro.engine.errors import ExecutionError
from repro.engine.index import Index, IndexKind
from repro.engine.predicate import And, Comparison
from repro.engine.query import SelectQuery

from ..conftest import make_test_table


def reference_result(table, query):
    """Naive projection of the naive filter."""
    out_cols = query.output_columns(table.schema)
    positions = [table.schema.position(c) for c in out_cols]
    return [
        tuple(r[p] for p in positions)
        for r in filter_rows(table, query.predicate)
    ]


@pytest.fixture
def table():
    return make_test_table(rows=800, seed=4)


QUERY = SelectQuery("t", ("a", "c"), And(Comparison("a", ">=", 200), Comparison("a", "<", 600)))


class TestSeqScan:
    def test_result_matches_reference(self, table):
        execution = seq_scan(table, QUERY)
        assert sorted(execution.result.rows) == sorted(reference_result(table, QUERY))

    def test_reads_every_page_and_tuple(self, table):
        execution = seq_scan(table, QUERY)
        assert execution.metrics.sequential_page_reads == table.num_pages
        assert execution.metrics.tuples_read == table.cardinality
        assert execution.metrics.tuples_evaluated == table.cardinality

    def test_intermediate_equals_operand(self, table):
        execution = seq_scan(table, QUERY)
        assert execution.info.intermediate_cardinality == table.cardinality
        assert execution.info.method == "seq_scan"

    def test_output_count_matches(self, table):
        execution = seq_scan(table, QUERY)
        assert execution.metrics.tuples_output == execution.result.cardinality

    def test_result_tuple_length(self, table):
        execution = seq_scan(table, QUERY)
        assert execution.result.tuple_length == table.schema.projected_tuple_length(
            ("a", "c")
        )


class TestClusteredIndexScan:
    @pytest.fixture
    def clustered(self, table):
        table.cluster_on("a")
        return Index("ci", table, "a", IndexKind.CLUSTERED)

    def test_result_matches_seq_scan(self, table, clustered):
        execution = clustered_index_scan(table, clustered, QUERY)
        assert sorted(execution.result.rows) == sorted(reference_result(table, QUERY))

    def test_reads_fraction_of_pages(self, table, clustered):
        execution = clustered_index_scan(table, clustered, QUERY)
        assert 0 < execution.metrics.sequential_page_reads <= table.num_pages
        assert execution.metrics.random_page_reads == clustered.height

    def test_intermediate_is_range_count(self, table, clustered):
        execution = clustered_index_scan(table, clustered, QUERY)
        expected = len([r for r in table if 200 <= r[0] < 600])
        assert execution.info.intermediate_cardinality == expected

    def test_requires_clustered_index(self, table):
        nc = Index("nc", table, "a", IndexKind.NONCLUSTERED)
        with pytest.raises(ExecutionError):
            clustered_index_scan(table, nc, QUERY)

    def test_unsargable_predicate_falls_back_to_full_range(self, table, clustered):
        query = SelectQuery("t", ("a",), Comparison("b", "<", 50))
        execution = clustered_index_scan(table, clustered, query)
        assert execution.info.intermediate_cardinality == table.cardinality
        assert sorted(execution.result.rows) == sorted(reference_result(table, query))


class TestNonClusteredIndexScan:
    @pytest.fixture
    def index(self, table):
        return Index("nc", table, "a", IndexKind.NONCLUSTERED)

    def test_result_matches_reference(self, table, index):
        execution = nonclustered_index_scan(table, index, QUERY)
        assert sorted(execution.result.rows) == sorted(reference_result(table, QUERY))

    def test_charges_random_reads_per_tuple(self, table, index):
        execution = nonclustered_index_scan(table, index, QUERY)
        k = execution.info.intermediate_cardinality
        assert execution.metrics.random_page_reads >= index.height
        assert execution.metrics.random_page_reads <= index.height + k

    def test_requires_bounded_range(self, table, index):
        query = SelectQuery("t", ("a",), Comparison("b", "<", 50))
        with pytest.raises(ExecutionError):
            nonclustered_index_scan(table, index, query)

    def test_residual_applied(self, table, index):
        query = SelectQuery(
            "t", ("a", "b"), And(Comparison("a", "<", 300), Comparison("b", "<", 10))
        )
        execution = nonclustered_index_scan(table, index, query)
        assert all(a < 300 and b < 10 for a, b in execution.result.rows)
        assert sorted(execution.result.rows) == sorted(reference_result(table, query))

    def test_selective_scan_cheaper_than_seq(self, table, index):
        narrow = SelectQuery("t", ("a",), Comparison("a", "<", 20))
        nc = nonclustered_index_scan(table, index, narrow)
        ss = seq_scan(table, narrow)
        assert nc.metrics.tuples_read < ss.metrics.tuples_read

    def test_empty_range(self, table, index):
        query = SelectQuery("t", ("a",), Comparison("a", ">", 10**9))
        execution = nonclustered_index_scan(table, index, query)
        assert execution.result.cardinality == 0
        assert execution.metrics.random_page_reads == index.height
