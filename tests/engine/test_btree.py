"""Unit and property tests for the B+-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.num_keys == 0
        assert tree.height == 1
        assert tree.search(5) == []

    def test_single_insert(self):
        tree = BPlusTree()
        tree.insert(10, 0)
        assert tree.search(10) == [0]
        assert len(tree) == 1

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        for rid in range(5):
            tree.insert(7, rid)
        assert tree.search(7) == [0, 1, 2, 3, 4]
        assert tree.num_keys == 1
        assert len(tree) == 5

    def test_order_too_small_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_height_grows_with_inserts(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i)
        assert tree.height > 1
        tree.check_invariants()

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = [5, 3, 8, 1, 9, 2, 7, 0, 6, 4]
        for i, k in enumerate(keys):
            tree.insert(k, i)
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestRangeSearch:
    @pytest.fixture
    def tree(self):
        t = BPlusTree(order=4)
        for i in range(0, 100, 2):  # even keys 0..98
            t.insert(i, i)
        return t

    def test_closed_range(self, tree):
        assert tree.range_search(10, 20) == [10, 12, 14, 16, 18, 20]

    def test_open_low(self, tree):
        assert tree.range_search(10, 16, low_inclusive=False) == [12, 14, 16]

    def test_open_high(self, tree):
        assert tree.range_search(10, 16, high_inclusive=False) == [10, 12, 14]

    def test_unbounded_low(self, tree):
        assert tree.range_search(None, 6) == [0, 2, 4, 6]

    def test_unbounded_high(self, tree):
        assert tree.range_search(94, None) == [94, 96, 98]

    def test_full_range(self, tree):
        assert tree.range_search() == list(range(0, 100, 2))

    def test_empty_range(self, tree):
        assert tree.range_search(11, 11) == []

    def test_range_below_everything(self, tree):
        assert tree.range_search(-10, -1) == []

    def test_range_above_everything(self, tree):
        assert tree.range_search(200, 300) == []


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
    order=st.integers(3, 16),
)
def test_property_tree_matches_sorted_reference(keys, order):
    """Invariants + search/range agreement with a sorted reference."""
    tree = BPlusTree(order=order)
    for rid, key in enumerate(keys):
        tree.insert(key, rid)
    tree.check_invariants()
    assert len(tree) == len(keys)
    assert tree.num_keys == len(set(keys))

    # Full iteration matches the multiset, sorted by key then insert order.
    expected = sorted(((k, i) for i, k in enumerate(keys)), key=lambda p: (p[0], p[1]))
    assert list(tree.items()) == expected

    if keys:
        lo, hi = np.percentile(keys, [25, 75])
        lo, hi = int(lo), int(hi)
        got = tree.range_search(lo, hi)
        want = [i for k, i in expected if lo <= k <= hi]
        assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_property_point_lookup(keys):
    tree = BPlusTree(order=5)
    for rid, key in enumerate(keys):
        tree.insert(key, rid)
    for probe in set(keys):
        assert tree.search(probe) == [i for i, k in enumerate(keys) if k == probe]
    assert tree.search(max(keys) + 1) == []
