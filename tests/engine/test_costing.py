"""Unit tests for cost profiles and elapsed-time simulation."""

import pytest

from repro.engine.costing import base_components, simulate_elapsed
from repro.engine.metrics import AccessInfo, ExecutionMetrics
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE, get_profile


class TestProfiles:
    def test_builtin_lookup(self):
        assert get_profile("oracle_like") is ORACLE_LIKE
        assert get_profile("db2_like") is DB2_LIKE

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("postgres_like")

    def test_profiles_validate(self):
        ORACLE_LIKE.validate()
        DB2_LIKE.validate()

    def test_profiles_differ(self):
        assert ORACLE_LIKE.t_init != DB2_LIKE.t_init
        assert ORACLE_LIKE.t_seq_page != DB2_LIKE.t_seq_page


class TestMetrics:
    def test_addition(self):
        a = ExecutionMetrics(sequential_page_reads=1, tuples_read=10)
        b = ExecutionMetrics(sequential_page_reads=2, hash_operations=5)
        c = a + b
        assert c.sequential_page_reads == 3
        assert c.tuples_read == 10
        assert c.hash_operations == 5

    def test_inplace_addition(self):
        a = ExecutionMetrics(random_page_reads=1)
        a += ExecutionMetrics(random_page_reads=4)
        assert a.random_page_reads == 5

    def test_total_page_reads(self):
        m = ExecutionMetrics(sequential_page_reads=3, random_page_reads=4)
        assert m.total_page_reads == 7

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            ExecutionMetrics(tuples_read=-1).validate()

    def test_access_info_fields(self):
        info = AccessInfo("seq_scan", 100, 100, 24)
        assert info.method == "seq_scan"
        assert info.operand_cardinality == 100


class TestElapsedSimulation:
    METRICS = ExecutionMetrics(
        sequential_page_reads=100,
        random_page_reads=10,
        tuples_read=5000,
        tuples_evaluated=5000,
        tuples_output=100,
    )

    def test_base_components_sum(self):
        init, io, cpu = base_components(self.METRICS, ORACLE_LIKE)
        assert init == ORACLE_LIKE.t_init
        assert io == pytest.approx(
            100 * ORACLE_LIKE.t_seq_page + 10 * ORACLE_LIKE.t_rand_page
        )
        assert cpu > 0

    def test_elapsed_is_base_times_slowdown_times_noise(self):
        breakdown = simulate_elapsed(self.METRICS, ORACLE_LIKE, slowdown=3.0, noise=1.1)
        assert breakdown.elapsed == pytest.approx(breakdown.base_time * 3.0 * 1.1)

    def test_slowdown_scales_everything(self):
        idle = simulate_elapsed(self.METRICS, ORACLE_LIKE, slowdown=1.0)
        loaded = simulate_elapsed(self.METRICS, ORACLE_LIKE, slowdown=10.0)
        assert loaded.elapsed == pytest.approx(10 * idle.elapsed)

    def test_zero_work_still_pays_initialization(self):
        breakdown = simulate_elapsed(ExecutionMetrics(), ORACLE_LIKE)
        assert breakdown.elapsed == pytest.approx(ORACLE_LIKE.t_init)

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(ValueError):
            simulate_elapsed(self.METRICS, ORACLE_LIKE, slowdown=0.0)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            simulate_elapsed(self.METRICS, ORACLE_LIKE, noise=-1.0)

    def test_profiles_produce_different_times(self):
        a = simulate_elapsed(self.METRICS, ORACLE_LIKE).elapsed
        b = simulate_elapsed(self.METRICS, DB2_LIKE).elapsed
        assert a != b
