"""Property tests: the vectorized hot paths are byte-identical to the
scalar reference implementations they replace.

The scalar paths are kept in the codebase as executable specifications;
these tests drive both through :mod:`repro.engine.vectorize`'s toggles
and assert exact equality — rows, pair order, histogram boundaries,
counts, everything — including the edge shapes named in the issue:
empty tables, single-row tables, and all-duplicate key columns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import vectorize
from repro.engine.histogram import EquiDepthHistogram
from repro.engine.joins import _match_pairs, naive_join
from repro.engine.optimizer import choose_join_plan
from repro.engine.predicate import And, Comparison, Not, Or, TruePredicate
from repro.engine.query import JoinQuery, SelectQuery
from repro.engine.schema import Column, TableSchema
from repro.engine.table import Table
from repro.engine.types import DataType


def make_table(name, rows, with_str=False):
    columns = [Column("a", DataType.INT), Column("b", DataType.INT)]
    if with_str:
        columns.append(Column("s", DataType.STR, 8))
    table = Table(TableSchema(name, columns))
    table.bulk_load(rows)
    table.analyze()
    return table


int_rows = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(0, 5)), max_size=60
)

comparison = st.builds(
    Comparison,
    column=st.sampled_from(["a", "b"]),
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=st.integers(-60, 60),
)
predicate = st.recursive(
    comparison,
    lambda sub: st.one_of(
        st.builds(And, sub, sub), st.builds(Or, sub, sub), st.builds(Not, sub)
    ),
    max_leaves=5,
)


class TestPredicateBatches:
    @settings(max_examples=120, deadline=None)
    @given(rows=int_rows, pred=predicate)
    def test_batch_mask_equals_row_at_a_time(self, rows, pred):
        table = make_table("t", rows)
        mask = pred.evaluate_batch(table)
        assert mask is not None
        expected = [pred.evaluate(r, table.schema) for r in table]
        assert mask.dtype == np.bool_
        assert mask.tolist() == expected

    def test_true_predicate_and_empty_table(self):
        table = make_table("t", [])
        assert TruePredicate().evaluate_batch(table).tolist() == []
        assert Comparison("a", "<", 3).evaluate_batch(table).tolist() == []

    def test_incompatible_types_fall_back_to_scalar(self):
        table = make_table("t", [(1, 2)])
        # String literal against an int column: no batch path, and the
        # scalar path is the one that decides the semantics.
        assert Comparison("a", "=", "x").evaluate_batch(table) is None

    def test_huge_integers_fall_back_to_scalar(self):
        table = make_table("t", [(1, 2), (3, 4)])
        assert Comparison("a", "<", 2**80).evaluate_batch(table) is None
        assert Comparison("a", "<", 2**40).evaluate_batch(table) is not None


class TestScanEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(rows=int_rows, pred=predicate)
    def test_seq_scan_rows_identical(self, rows, pred):
        from repro.engine.access import seq_scan

        query = SelectQuery("t", ("a", "b"), pred)
        with vectorize.force_scalar():
            scalar = seq_scan(make_table("t", rows), query)
        with vectorize.force_vectorized():
            vector = seq_scan(make_table("t", rows), query)
        assert vector.result.rows == scalar.result.rows
        assert vector.metrics == scalar.metrics


join_keys = st.lists(st.integers(0, 6), max_size=40)


class TestJoinEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(left_keys=join_keys, right_keys=join_keys)
    def test_match_pairs_identical_order(self, left_keys, right_keys):
        left_rows = [(k, i) for i, k in enumerate(left_keys)]
        right_rows = [(k, 100 + i) for i, k in enumerate(right_keys)]
        with vectorize.force_scalar():
            scalar = _match_pairs(left_rows, right_rows, 0, 0)
        with vectorize.force_vectorized():
            vector = _match_pairs(left_rows, right_rows, 0, 0)
        assert vector == scalar

    def test_match_pairs_edge_shapes(self):
        for left, right in [
            ([], []),
            ([(1, 0)], []),
            ([], [(1, 0)]),
            ([(7, 0)], [(7, 1)]),  # single row each
            ([(3, i) for i in range(5)], [(3, j) for j in range(4)]),  # all dups
        ]:
            with vectorize.force_scalar():
                scalar = _match_pairs(left, right, 0, 0)
            with vectorize.force_vectorized():
                vector = _match_pairs(left, right, 0, 0)
            assert vector == scalar

    def test_string_keys_match(self):
        left = [("x", 1), ("y", 2), ("x", 3)]
        right = [("x", 9), ("z", 8)]
        with vectorize.force_scalar():
            scalar = _match_pairs(left, right, 0, 0)
        with vectorize.force_vectorized():
            vector = _match_pairs(left, right, 0, 0)
        assert vector == scalar

    @settings(max_examples=40, deadline=None)
    @given(left_rows=int_rows, right_rows=int_rows)
    def test_planned_join_rows_identical(self, left_rows, right_rows):
        query = JoinQuery("l", "r", "b", "b")

        def run():
            left = make_table("l", left_rows)
            right = make_table("r", right_rows)
            plan = choose_join_plan(left, right, [], [], query)
            return plan.execute(left, right, query)

        with vectorize.force_scalar():
            scalar = run()
        with vectorize.force_vectorized():
            vector = run()
        assert vector.method == scalar.method
        assert vector.result.rows == scalar.result.rows
        assert vector.metrics == scalar.metrics

    @settings(max_examples=30, deadline=None)
    @given(left_rows=int_rows, right_rows=int_rows)
    def test_naive_join_rows_identical(self, left_rows, right_rows):
        query = JoinQuery("l", "r", "b", "b")
        with vectorize.force_scalar():
            scalar = naive_join(make_table("l", left_rows), make_table("r", right_rows), query)
        with vectorize.force_vectorized():
            vector = naive_join(make_table("l", left_rows), make_table("r", right_rows), query)
        assert vector.result.rows == scalar.result.rows
        assert vector.metrics == scalar.metrics


hist_values = st.lists(
    st.integers(-1000, 1000).map(float) | st.integers(-1000, 1000), min_size=1, max_size=200
)


class TestHistogramEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(values=hist_values, num_buckets=st.integers(1, 12))
    def test_build_identical(self, values, num_buckets):
        with vectorize.force_scalar():
            scalar = EquiDepthHistogram.build(values, num_buckets)
        with vectorize.force_vectorized():
            vector = EquiDepthHistogram.build(values, num_buckets)
        assert vector == scalar

    def test_edge_shapes_identical(self):
        for values in [[5], [3.0] * 50, list(range(7)), [1, 1, 2, 2, 2, 9]]:
            with vectorize.force_scalar():
                scalar = EquiDepthHistogram.build(values, 4)
            with vectorize.force_vectorized():
                vector = EquiDepthHistogram.build(values, 4)
            assert vector == scalar

    @settings(max_examples=60, deadline=None)
    @given(values=hist_values, probe=st.integers(-1100, 1100))
    def test_estimates_identical(self, values, probe):
        with vectorize.force_scalar():
            scalar = EquiDepthHistogram.build(values, 8)
        with vectorize.force_vectorized():
            vector = EquiDepthHistogram.build(values, 8)
        assert vector.estimate_le(probe) == scalar.estimate_le(probe)
        assert vector.estimate_eq(probe) == scalar.estimate_eq(probe)


class TestToggle:
    def test_context_managers_nest_and_restore(self):
        before = vectorize.enabled()
        with vectorize.force_scalar():
            assert not vectorize.enabled()
            with vectorize.force_vectorized():
                assert vectorize.enabled()
            assert not vectorize.enabled()
        assert vectorize.enabled() == before
