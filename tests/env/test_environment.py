"""Unit tests for Environment, LoadBuilder, and EnvironmentMonitor."""

import pytest

from repro.env.contention import ConstantContention, UniformContention
from repro.env.environment import (
    Environment,
    dynamic_clustered_environment,
    dynamic_uniform_environment,
    static_environment,
)
from repro.env.loadbuilder import LoadBuilder
from repro.env.monitor import EnvironmentMonitor


class TestEnvironment:
    def test_static_environment_is_idle(self):
        env = static_environment()
        assert env.level() == 0.0
        assert env.slowdown() == 1.0

    def test_dynamic_factories_seeded(self):
        a = dynamic_uniform_environment(seed=5)
        b = dynamic_uniform_environment(seed=5)
        a.advance(100)
        b.advance(100)
        assert a.level() == b.level()

    def test_clustered_factory(self):
        env = dynamic_clustered_environment(seed=5)
        assert 0.0 <= env.level() <= 1.0

    def test_advance_moves_time(self):
        env = static_environment()
        env.advance(12.0)
        assert env.now == 12.0

    def test_level_follows_trace(self):
        env = Environment(trace=ConstantContention(0.6))
        assert env.level() == 0.6
        assert env.slowdown() > 1.0

    def test_concurrent_processes_in_range(self):
        env = Environment(trace=ConstantContention(0.5))
        assert 50 <= env.concurrent_processes() <= 130

    def test_snapshot_reflects_level(self):
        low = Environment(trace=ConstantContention(0.0)).snapshot()
        high = Environment(trace=ConstantContention(1.0)).snapshot()
        assert high.load_avg_1 > low.load_avg_1


class TestLoadBuilder:
    def test_constant_replaces_trace(self):
        env = static_environment()
        LoadBuilder(env).constant(0.8)
        assert env.level() == 0.8

    def test_idle_removes_load(self):
        env = static_environment()
        builder = LoadBuilder(env)
        builder.constant(0.8)
        builder.idle()
        assert env.level() == 0.0

    def test_uniform_installs_uniform_trace(self):
        env = static_environment()
        LoadBuilder(env, seed=3).uniform(low=0.1, high=0.9)
        assert isinstance(env.trace, UniformContention)

    def test_random_walk_and_clustered(self):
        env = static_environment()
        builder = LoadBuilder(env, seed=3)
        builder.random_walk(start=0.4)
        assert env.level() == 0.4
        builder.clustered()
        assert 0.0 <= env.level() <= 1.0


class TestMonitor:
    def test_statistics_snapshot(self):
        env = Environment(trace=ConstantContention(0.5))
        snap = EnvironmentMonitor(env).statistics()
        assert snap.running_processes > 0

    def test_observe_advances_time(self):
        env = static_environment()
        snaps = EnvironmentMonitor(env).observe(5, interval_seconds=10.0)
        assert len(snaps) == 5
        assert env.now == pytest.approx(40.0)

    def test_observe_validates_args(self):
        env = static_environment()
        with pytest.raises(ValueError):
            EnvironmentMonitor(env).observe(0)
        with pytest.raises(ValueError):
            EnvironmentMonitor(env).observe(2, interval_seconds=-1)


class TestMonitorProcessView:
    def test_process_table_reflects_level(self):
        env = Environment(trace=ConstantContention(0.8))
        monitor = EnvironmentMonitor(env)
        heavy = monitor.process_table()
        env.trace = ConstantContention(0.0)
        light = monitor.process_table()
        assert len(heavy) > len(light)

    def test_top_renders(self):
        env = Environment(trace=ConstantContention(0.5))
        text = EnvironmentMonitor(env).top(n=5)
        assert "PID" in text and "running" in text
