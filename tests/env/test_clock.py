"""Unit tests for the simulated clock."""

import pytest

from repro.env.clock import SimulationClock


def test_starts_at_zero():
    assert SimulationClock().now == 0.0


def test_custom_start():
    assert SimulationClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimulationClock(-1.0)


def test_advance_accumulates():
    clock = SimulationClock()
    clock.advance(2.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(3.0)


def test_advance_returns_new_time():
    assert SimulationClock().advance(1.0) == 1.0


def test_backwards_advance_rejected():
    with pytest.raises(ValueError):
        SimulationClock().advance(-0.1)


def test_zero_advance_allowed():
    clock = SimulationClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0
