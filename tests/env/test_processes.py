"""Unit tests for the simulated process table."""

import pytest

from repro.env.contention import level_to_processes
from repro.env.processes import (
    ProcessTable,
    RUNNING,
    SLEEPING,
    STOPPED,
    SimProcess,
    ZOMBIE,
)
from repro.env.stats import MachineSpec, StatisticsModel


class TestSimProcess:
    def test_valid_states_only(self):
        with pytest.raises(ValueError):
            SimProcess(1, "x", "Q", 0.0, 0.0)

    def test_non_negative_resources(self):
        with pytest.raises(ValueError):
            SimProcess(1, "x", RUNNING, -1.0, 0.0)


class TestSnapshot:
    @pytest.fixture
    def table(self):
        return ProcessTable(seed=5)

    def test_total_count_tracks_level(self, table):
        low = table.snapshot(0.1)
        high = table.snapshot(0.9)
        assert len(high) > len(low)
        spec = MachineSpec()
        assert len(high) == spec.base_sleeping_processes + level_to_processes(0.9)

    def test_counts_partition_the_population(self, table):
        counts = table.counts(0.6)
        assert sum(counts.values()) == len(table.snapshot(0.6))
        assert counts[RUNNING] >= 1
        assert counts[SLEEPING] >= 0

    def test_cpu_shares_sum_to_busy_fraction(self, table):
        processes = table.snapshot(0.5)
        total_cpu = sum(p.cpu_pct for p in processes)
        # StatisticsModel's noiseless busy% at level 0.5 is 8 + 88*0.5.
        assert total_cpu == pytest.approx(8.0 + 88.0 * 0.5, rel=0.01)

    def test_only_running_processes_burn_cpu(self, table):
        for process in table.snapshot(0.7):
            if process.state != RUNNING:
                assert process.cpu_pct == 0.0

    def test_memory_sums_to_used_memory(self, table):
        spec = MachineSpec()
        processes = table.snapshot(0.4)
        total_mem = sum(p.memory_mb for p in processes)
        expected = spec.total_memory_mb * (0.25 + 0.70 * 0.4)
        # The last share is reused for trailing states; allow slack.
        assert total_mem == pytest.approx(expected, rel=0.15)

    def test_deterministic_within_epoch(self, table):
        a = table.snapshot(0.5, at_time=10.0)
        b = table.snapshot(0.5, at_time=20.0)  # same 30 s epoch
        assert a == b

    def test_changes_across_epochs(self, table):
        a = table.snapshot(0.5, at_time=0.0)
        b = table.snapshot(0.5, at_time=100.0)
        assert a != b

    def test_invalid_level_rejected(self, table):
        with pytest.raises(ValueError):
            table.snapshot(1.5)

    def test_counts_consistent_with_statistics_model(self, table):
        """The process table and the aggregate statistics agree on the
        running-process count formula (both noiseless)."""
        stats = StatisticsModel(noise=0.0)
        for level in (0.2, 0.5, 0.8):
            counts = table.counts(level)
            snap = stats.snapshot(level)
            assert counts[RUNNING] == snap.running_processes

    def test_zombies_appear_under_load(self, table):
        assert table.counts(0.0)[ZOMBIE] == 0
        assert table.counts(1.0)[ZOMBIE] >= 1
        assert table.counts(1.0)[STOPPED] >= 1


class TestTopRendering:
    def test_header_and_rows(self):
        table = ProcessTable(seed=1)
        text = table.top(0.6, n=5)
        lines = text.splitlines()
        assert "running" in lines[0]
        assert "PID" in lines[1]
        assert len(lines) == 7  # header + columns + 5 rows

    def test_sorted_by_cpu(self):
        table = ProcessTable(seed=1)
        text = table.top(0.8, n=8)
        cpu_column = [
            float(line.split()[3]) for line in text.splitlines()[2:]
        ]
        assert cpu_column == sorted(cpu_column, reverse=True)
