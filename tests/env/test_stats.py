"""Unit tests for the system-statistics simulator (Table 1 fields)."""

import numpy as np
import pytest

from repro.env.stats import (
    MAJOR_CONTENTION_PARAMETERS,
    MachineSpec,
    StatisticsModel,
    SystemStatistics,
)


@pytest.fixture
def model():
    return StatisticsModel(noise=0.0, seed=1)


class TestSnapshotFields:
    def test_table1_cpu_fields_present(self, model):
        snap = model.snapshot(0.5)
        for field in (
            "running_processes",
            "sleeping_processes",
            "stopped_processes",
            "zombie_processes",
            "pct_user_time",
            "pct_system_time",
            "pct_idle_time",
            "load_avg_1",
            "load_avg_5",
            "load_avg_15",
        ):
            assert hasattr(snap, field)

    def test_table1_memory_io_other_fields_present(self, model):
        snap = model.snapshot(0.5)
        for field in (
            "available_memory_mb",
            "used_memory_mb",
            "used_swap_mb",
            "swapped_in_mb",
            "reads_per_sec",
            "writes_per_sec",
            "pct_disk_utilization",
            "current_users",
            "interrupts_per_sec",
            "context_switches_per_sec",
            "system_calls_per_sec",
        ):
            assert hasattr(snap, field)

    def test_major_parameters_are_real_fields(self):
        assert set(MAJOR_CONTENTION_PARAMETERS) <= set(SystemStatistics.field_names())

    def test_cpu_percentages_sum_to_100(self, model):
        snap = model.snapshot(0.3)
        total = snap.pct_user_time + snap.pct_system_time + snap.pct_idle_time
        assert total == pytest.approx(100.0, abs=0.5)

    def test_memory_conserved(self, model):
        spec = MachineSpec()
        snap = model.snapshot(0.7)
        assert snap.available_memory_mb + snap.used_memory_mb == pytest.approx(
            spec.total_memory_mb
        )


class TestContentionSignal:
    def test_statistics_monotone_in_level(self, model):
        low = model.snapshot(0.1)
        high = model.snapshot(0.9)
        assert high.load_avg_1 > low.load_avg_1
        assert high.pct_disk_utilization > low.pct_disk_utilization
        assert high.used_memory_mb > low.used_memory_mb
        assert high.reads_per_sec > low.reads_per_sec

    def test_noise_perturbs_but_preserves_signal(self):
        noisy = StatisticsModel(noise=0.05, seed=2)
        lows = [noisy.snapshot(0.1).load_avg_1 for _ in range(20)]
        highs = [noisy.snapshot(0.9).load_avg_1 for _ in range(20)]
        assert len(set(lows)) > 1  # noise present
        assert np.mean(highs) > np.mean(lows)  # signal survives

    def test_invalid_level_rejected(self, model):
        with pytest.raises(ValueError):
            model.snapshot(-0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            StatisticsModel(noise=-0.1)


class TestVectorExtraction:
    def test_as_vector_order(self, model):
        snap = model.snapshot(0.5)
        vec = snap.as_vector(("load_avg_1", "used_memory_mb"))
        assert vec[0] == pytest.approx(snap.load_avg_1)
        assert vec[1] == pytest.approx(snap.used_memory_mb)

    def test_as_vector_unknown_field(self, model):
        with pytest.raises(AttributeError):
            model.snapshot(0.5).as_vector(("no_such_field",))
