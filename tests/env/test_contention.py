"""Unit tests for contention traces and the slowdown model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.contention import (
    ClusteredContention,
    ConstantContention,
    ContentionCluster,
    DEFAULT_CLUSTERS,
    PROCESS_BASELINE,
    PROCESS_SPAN,
    RandomWalkContention,
    SlowdownModel,
    UniformContention,
    level_to_processes,
    processes_to_level,
)


class TestConstant:
    def test_level_is_constant(self):
        trace = ConstantContention(0.4)
        assert trace.level_at(0) == trace.level_at(1e6) == 0.4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ConstantContention(1.5)


class TestUniform:
    def test_levels_within_bounds(self):
        trace = UniformContention(seed=1, epoch_seconds=10, low=0.2, high=0.8)
        levels = [trace.level_at(t) for t in np.arange(0, 1000, 10)]
        assert all(0.2 <= lv <= 0.8 for lv in levels)

    def test_constant_within_epoch(self):
        trace = UniformContention(seed=1, epoch_seconds=100)
        assert trace.level_at(5) == trace.level_at(95)

    def test_changes_across_epochs(self):
        trace = UniformContention(seed=1, epoch_seconds=10)
        levels = {trace.level_at(t) for t in range(0, 500, 10)}
        assert len(levels) > 10

    def test_deterministic_given_seed(self):
        a = UniformContention(seed=7, epoch_seconds=10)
        b = UniformContention(seed=7, epoch_seconds=10)
        times = np.linspace(0, 500, 40)
        assert [a.level_at(t) for t in times] == [b.level_at(t) for t in times]

    def test_random_access_consistent_with_sequential(self):
        sequential = UniformContention(seed=3, epoch_seconds=10)
        seq_levels = [sequential.level_at(t) for t in range(0, 100, 10)]
        random_access = UniformContention(seed=3, epoch_seconds=10)
        assert random_access.level_at(95) == seq_levels[9]
        assert random_access.level_at(5) == seq_levels[0]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformContention(low=0.9, high=0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            UniformContention().level_at(-1)


class TestRandomWalk:
    def test_starts_at_start(self):
        trace = RandomWalkContention(seed=1, start=0.3)
        assert trace.level_at(0) == 0.3

    def test_stays_in_unit_interval(self):
        trace = RandomWalkContention(seed=2, epoch_seconds=1, step=0.3)
        levels = [trace.level_at(t) for t in range(500)]
        assert all(0.0 <= lv <= 1.0 for lv in levels)

    def test_moves(self):
        trace = RandomWalkContention(seed=2, epoch_seconds=1)
        assert len({trace.level_at(t) for t in range(50)}) > 5


class TestClustered:
    def test_levels_concentrate_near_cluster_means(self):
        trace = ClusteredContention(seed=4, epoch_seconds=1)
        levels = np.array([trace.level_at(t) for t in range(3000)])
        means = np.array([c.mean for c in DEFAULT_CLUSTERS])
        distances = np.min(np.abs(levels[:, None] - means[None, :]), axis=1)
        # The vast majority of draws should land within 3 sigma of a mean.
        assert np.mean(distances < 0.15) > 0.95

    def test_all_clusters_visited(self):
        trace = ClusteredContention(seed=4, epoch_seconds=1)
        levels = np.array([trace.level_at(t) for t in range(2000)])
        for cluster in DEFAULT_CLUSTERS:
            assert np.any(np.abs(levels - cluster.mean) < 0.1)

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            ContentionCluster(weight=-1, mean=0.5, std=0.1)
        with pytest.raises(ValueError):
            ContentionCluster(weight=1, mean=2.0, std=0.1)

    def test_empty_clusters_rejected(self):
        with pytest.raises(ValueError):
            ClusteredContention(clusters=())


class TestSlowdownModel:
    def test_idle_has_no_slowdown(self):
        assert SlowdownModel().slowdown(0.0) == 1.0

    def test_monotone_in_level(self):
        model = SlowdownModel()
        values = [model.slowdown(lv) for lv in np.linspace(0, 1, 20)]
        assert values == sorted(values)

    def test_convex_shape(self):
        model = SlowdownModel()
        # Second differences of a convex function are non-negative.
        xs = np.linspace(0, 1, 11)
        ys = np.array([model.slowdown(x) for x in xs])
        assert np.all(np.diff(ys, 2) >= -1e-9)

    def test_default_swing_matches_figure1_order(self):
        # Figure 1 shows a ~33x swing; the default model gives ~30x.
        swing = SlowdownModel().slowdown(1.0)
        assert 20 <= swing <= 50

    def test_out_of_range_level_rejected(self):
        with pytest.raises(ValueError):
            SlowdownModel().slowdown(1.2)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_property_inverse_roundtrip(self, level):
        model = SlowdownModel()
        recovered = model.level_for_slowdown(model.slowdown(level))
        assert recovered == pytest.approx(level, abs=1e-9)

    def test_linear_only_inverse(self):
        model = SlowdownModel(linear=5.0, quadratic=0.0)
        assert model.level_for_slowdown(model.slowdown(0.4)) == pytest.approx(0.4)


class TestProcessMapping:
    def test_roundtrip(self):
        for level in (0.0, 0.25, 0.5, 1.0):
            procs = level_to_processes(level)
            assert processes_to_level(procs) == pytest.approx(level, abs=0.01)

    def test_bounds(self):
        assert level_to_processes(0.0) == PROCESS_BASELINE
        assert level_to_processes(1.0) == PROCESS_BASELINE + PROCESS_SPAN

    def test_out_of_range_processes_rejected(self):
        with pytest.raises(ValueError):
            processes_to_level(PROCESS_BASELINE - 10)
