"""Unit tests for simple and per-state correlation coefficients."""

import numpy as np
import pytest

from repro.mlr.correlation import (
    average_abs_state_correlation,
    max_abs_state_correlation,
    per_state_correlations,
    simple_correlation,
)


class TestSimpleCorrelation:
    def test_perfect_positive(self):
        x = [1, 2, 3, 4]
        assert simple_correlation(x, [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = [1, 2, 3, 4]
        assert simple_correlation(x, [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 100)
        y = 0.5 * x + rng.normal(0, 1, 100)
        assert simple_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_input_gives_zero(self):
        assert simple_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert simple_correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_too_few_points_gives_zero(self):
        assert simple_correlation([1], [2]) == 0.0
        assert simple_correlation([], []) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simple_correlation([1, 2], [1, 2, 3])

    def test_clamped_to_unit_interval(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            x = rng.normal(0, 1, 10)
            r = simple_correlation(x, 3 * x)
            assert -1.0 <= r <= 1.0


class TestPerStateCorrelations:
    def test_computed_within_each_state(self):
        # State 0: y = x (r=1); state 1: y = -x (r=-1).
        x = [1, 2, 3, 1, 2, 3]
        y = [1, 2, 3, 3, 2, 1]
        states = [0, 0, 0, 1, 1, 1]
        rs = per_state_correlations(x, y, states, 2)
        assert rs[0] == pytest.approx(1.0)
        assert rs[1] == pytest.approx(-1.0)

    def test_empty_state_reports_zero(self):
        rs = per_state_correlations([1, 2], [1, 2], [0, 0], 3)
        assert rs == [pytest.approx(1.0), 0.0, 0.0]

    def test_max_abs(self):
        x = [1, 2, 3, 1, 2, 3]
        y = [1, 2, 3, 3, 2, 1]
        states = [0, 0, 0, 1, 1, 1]
        assert max_abs_state_correlation(x, y, states, 2) == pytest.approx(1.0)

    def test_average_abs(self):
        x = [1, 2, 3, 5, 5, 5]
        y = [1, 2, 3, 1, 2, 3]
        states = [0, 0, 0, 1, 1, 1]
        # State 0 r=1, state 1 r=0 (constant x) -> average 0.5.
        assert average_abs_state_correlation(x, y, states, 2) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            per_state_correlations([1, 2], [1, 2], [0], 1)
