"""Property-based tests for the regression substrate (hypothesis).

:func:`repro.mlr.ols.fit_ols` is checked against
``numpy.linalg.lstsq`` on random well-conditioned systems — same
coefficients, consistent fitted values/residuals, sane statistics — and
on rank-deficient systems, where it must return the same minimum-norm
solution.  The diagnostics layer's rank-deficiency *rejection* behaviour
is checked too: exactly collinear columns must be flagged with infinite
VIF and excluded by :func:`~repro.mlr.diagnostics.collinear_columns`.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mlr.diagnostics import (
    collinear_columns,
    variance_inflation_factor,
    variance_inflation_factors,
)
from repro.mlr.linalg import add_intercept
from repro.mlr.ols import fit_ols

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _random_system(seed: int, n: int, p: int, noise: float = 0.25):
    """A random regression system with an intercept column."""
    rng = np.random.default_rng(seed)
    X = np.column_stack([np.ones(n), rng.normal(size=(n, p))])
    beta = rng.normal(scale=3.0, size=p + 1)
    y = X @ beta + rng.normal(scale=noise, size=n)
    return X, y


class TestOLSAgainstLstsq:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, n=st.integers(8, 60), p=st.integers(1, 5))
    def test_matches_lstsq_on_well_conditioned_systems(self, seed, n, p):
        assume(n >= p + 3)
        X, y = _random_system(seed, n, p)
        assume(np.linalg.cond(X) < 1e6)
        result = fit_ols(X, y)
        expected, _, rank, _ = np.linalg.lstsq(X, y, rcond=None)
        assert rank == p + 1
        np.testing.assert_allclose(result.coefficients, expected, rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(result.fitted, X @ expected, rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(
            result.residuals, y - X @ expected, rtol=1e-6, atol=1e-8
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, n=st.integers(8, 60), p=st.integers(1, 5))
    def test_statistics_are_coherent(self, seed, n, p):
        assume(n >= p + 3)
        X, y = _random_system(seed, n, p)
        assume(np.linalg.cond(X) < 1e6)
        result = fit_ols(X, y)
        assert 0.0 <= result.r_squared <= 1.0
        assert result.standard_error >= 0.0
        assert result.degrees_of_freedom == n - (p + 1)
        # SEE is exactly sqrt(SSE / df) — the paper's eq. (3).
        expected_see = np.sqrt(result.sse / result.degrees_of_freedom)
        np.testing.assert_allclose(result.standard_error, expected_see, rtol=1e-9)
        if result.f_pvalue is not None:
            assert 0.0 <= result.f_pvalue <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(10, 50), p=st.integers(1, 4))
    def test_rank_deficient_returns_minimum_norm_solution(self, seed, n, p):
        """A duplicated column makes X rank-deficient; fit_ols must agree
        with lstsq's pseudo-inverse (minimum-norm) solution, not raise."""
        X, y = _random_system(seed, n, p)
        X = np.column_stack([X, X[:, -1]])  # exact copy -> rank deficiency
        result = fit_ols(X, y)
        expected, _, rank, _ = np.linalg.lstsq(X, y, rcond=None)
        assert rank < X.shape[1]
        np.testing.assert_allclose(result.coefficients, expected, rtol=1e-6, atol=1e-8)

    def test_more_parameters_than_observations_rejected(self):
        X = np.ones((3, 5))
        with pytest.raises(ValueError):
            fit_ols(X, np.zeros(3))


class TestVIFProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS, n=st.integers(12, 60), p=st.integers(2, 5))
    def test_vif_at_least_one_on_random_designs(self, seed, n, p):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        for vif in variance_inflation_factors(X):
            assert vif >= 1.0

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(12, 60), p=st.integers(1, 4))
    def test_exact_collinearity_is_flagged_and_rejected(self, seed, n, p):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        X = np.column_stack([X, X @ rng.normal(size=p)])  # exact combination
        assert variance_inflation_factor(X, X.shape[1] - 1) == float("inf")
        states = np.zeros(n, dtype=int)
        rejected = collinear_columns(X, states, num_states=1)
        assert X.shape[1] - 1 in rejected

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, n=st.integers(20, 60), p=st.integers(2, 4))
    def test_vif_matches_auxiliary_r2_definition(self, seed, n, p):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        column = 0
        vif = variance_inflation_factor(X, column)
        others = np.delete(X, column, axis=1)
        r2 = fit_ols(add_intercept(others), X[:, column]).r_squared
        assume(r2 < 1.0 - 1e-9)
        np.testing.assert_allclose(vif, 1.0 / (1.0 - r2), rtol=1e-8)
