"""Unit tests for the regression substrate's numerical kernels."""

import numpy as np
import pytest

from repro.mlr.linalg import (
    add_intercept,
    as_design_matrix,
    as_response_vector,
    least_squares,
    xtx_inverse,
)


class TestCanonicalization:
    def test_1d_promoted_to_column(self):
        X = as_design_matrix(np.array([1.0, 2.0, 3.0]))
        assert X.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            as_design_matrix(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_design_matrix(np.array([[1.0, np.nan]]))

    def test_response_length_checked(self):
        with pytest.raises(ValueError):
            as_response_vector(np.array([1.0, 2.0]), 3)

    def test_response_inf_rejected(self):
        with pytest.raises(ValueError):
            as_response_vector(np.array([1.0, np.inf]), 2)


class TestLeastSquares:
    def test_exact_solution(self):
        X = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        beta_true = np.array([2.0, -3.0])
        beta = least_squares(X, X @ beta_true)
        assert beta == pytest.approx(beta_true)

    def test_rank_deficient_does_not_raise(self):
        X = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])  # collinear
        beta = least_squares(X, np.array([1.0, 2.0, 3.0]))
        assert np.all(np.isfinite(beta))

    def test_xtx_inverse_identity(self):
        X = np.eye(3)
        assert xtx_inverse(X) == pytest.approx(np.eye(3))

    def test_xtx_inverse_singular_uses_pinv(self):
        X = np.array([[1.0, 1.0], [1.0, 1.0]])
        inv = xtx_inverse(X)
        assert np.all(np.isfinite(inv))

    def test_add_intercept(self):
        X = add_intercept(np.array([[2.0], [3.0]]))
        assert X.shape == (2, 2)
        assert np.all(X[:, 0] == 1.0)
