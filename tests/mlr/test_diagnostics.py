"""Unit tests for multicollinearity diagnostics (VIF)."""

import numpy as np
import pytest

from repro.mlr.diagnostics import (
    collinear_columns,
    max_state_vif,
    variance_inflation_factor,
    variance_inflation_factors,
)


def correlated_design(rho: float, n: int = 200, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x1 = rng.normal(0, 1, n)
    x2 = rho * x1 + np.sqrt(1 - rho**2) * rng.normal(0, 1, n)
    return np.column_stack([x1, x2])


class TestVIF:
    def test_independent_columns_have_vif_near_one(self):
        X = correlated_design(0.0)
        for vif in variance_inflation_factors(X):
            assert vif == pytest.approx(1.0, abs=0.1)

    def test_vif_formula_for_known_correlation(self):
        rho = 0.9
        X = correlated_design(rho, n=5000)
        expected = 1.0 / (1.0 - rho**2)
        assert variance_inflation_factor(X, 0) == pytest.approx(expected, rel=0.15)

    def test_exact_collinearity_is_infinite(self):
        x = np.arange(10.0)
        X = np.column_stack([x, 2 * x])
        assert variance_inflation_factor(X, 0) == float("inf")

    def test_constant_column_is_infinite(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        assert variance_inflation_factor(X, 0) == float("inf")

    def test_single_column_is_one(self):
        assert variance_inflation_factor(np.arange(10.0).reshape(-1, 1), 0) == 1.0

    def test_column_index_checked(self):
        with pytest.raises(IndexError):
            variance_inflation_factor(correlated_design(0.5), 5)


class TestPerStateVIF:
    def test_collinearity_in_one_state_detected(self):
        rng = np.random.default_rng(2)
        # State 0: independent; state 1: perfectly collinear.
        x1_a = rng.normal(0, 1, 50)
        x2_a = rng.normal(0, 1, 50)
        x1_b = rng.normal(0, 1, 50)
        X = np.column_stack(
            [np.concatenate([x1_a, x1_b]), np.concatenate([x2_a, 3 * x1_b])]
        )
        states = [0] * 50 + [1] * 50
        assert max_state_vif(X, states, 2, 0) == float("inf")

    def test_small_states_skipped(self):
        X = correlated_design(0.99, n=4)
        # With 2 states of 2 rows each there is nothing to regress.
        assert max_state_vif(X, [0, 0, 1, 1], 2, 0) == 1.0

    def test_collinear_columns_listing(self):
        x = np.arange(100.0)
        rng = np.random.default_rng(3)
        X = np.column_stack([x, 2 * x + 1e-9 * rng.normal(size=100), rng.normal(size=100)])
        states = [0] * 100
        flagged = collinear_columns(X, states, 1, limit=10.0)
        assert 0 in flagged or 1 in flagged
        assert 2 not in flagged

    def test_state_length_checked(self):
        with pytest.raises(ValueError):
            max_state_vif(correlated_design(0.5), [0, 1], 2, 0)
