"""Unit tests for prediction intervals and outlier diagnostics."""

import numpy as np
import pytest

from repro.mlr.intervals import (
    leverages,
    outlier_indices,
    prediction_interval,
    studentized_residuals,
)
from repro.mlr.linalg import add_intercept
from repro.mlr.ols import fit_ols


def make_fit(n=100, noise=0.5, seed=0, outlier_at=None):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, n)
    y = 1.0 + 2.0 * x + rng.normal(0, noise, n)
    if outlier_at is not None:
        y[outlier_at] += 30.0
    X = add_intercept(x.reshape(-1, 1))
    return fit_ols(X, y), X, x, y


class TestPredictionInterval:
    def test_interval_brackets_point(self):
        result, X, *_ = make_fit()
        point, lower, upper = prediction_interval(result, X[:5])
        assert np.all(lower < point)
        assert np.all(point < upper)

    def test_coverage_near_nominal(self):
        # Fit on one sample, check coverage of fresh draws from the same
        # process: ~95% of new observations should land in the interval.
        result, _, _, _ = make_fit(n=200, noise=1.0, seed=1)
        rng = np.random.default_rng(2)
        x_new = rng.uniform(0, 10, 2000)
        y_new = 1.0 + 2.0 * x_new + rng.normal(0, 1.0, 2000)
        rows = add_intercept(x_new.reshape(-1, 1))
        _, lower, upper = prediction_interval(result, rows, confidence=0.95)
        coverage = np.mean((y_new >= lower) & (y_new <= upper))
        assert 0.90 <= coverage <= 0.99

    def test_higher_confidence_widens(self):
        result, X, *_ = make_fit()
        _, lo90, hi90 = prediction_interval(result, X[:3], confidence=0.90)
        _, lo99, hi99 = prediction_interval(result, X[:3], confidence=0.99)
        assert np.all(lo99 < lo90)
        assert np.all(hi99 > hi90)

    def test_extrapolation_widens_interval(self):
        result, _, *_ = make_fit()
        near = add_intercept(np.array([[5.0]]))
        far = add_intercept(np.array([[50.0]]))
        _, lo_n, hi_n = prediction_interval(result, near)
        _, lo_f, hi_f = prediction_interval(result, far)
        assert (hi_f - lo_f) > (hi_n - lo_n)

    def test_invalid_confidence_rejected(self):
        result, X, *_ = make_fit()
        with pytest.raises(ValueError):
            prediction_interval(result, X[:1], confidence=1.0)

    def test_column_mismatch_rejected(self):
        result, _, *_ = make_fit()
        with pytest.raises(ValueError):
            prediction_interval(result, np.ones((1, 5)))


class TestLeverages:
    def test_bounds_and_sum(self):
        result, X, *_ = make_fit()
        h = leverages(result, X)
        assert np.all(h >= 0) and np.all(h <= 1)
        # Sum of leverages equals the parameter count.
        assert h.sum() == pytest.approx(result.n_parameters, rel=0.01)

    def test_extreme_point_has_high_leverage(self):
        rng = np.random.default_rng(3)
        x = np.concatenate([rng.uniform(0, 1, 50), [100.0]])
        y = x * 2 + rng.normal(0, 0.1, 51)
        X = add_intercept(x.reshape(-1, 1))
        result = fit_ols(X, y)
        h = leverages(result, X)
        assert h[-1] > 0.9


class TestOutliers:
    def test_injected_outlier_found(self):
        result, X, *_ = make_fit(outlier_at=17)
        flagged = outlier_indices(result, X, threshold=3.0)
        assert 17 in flagged

    def test_clean_data_mostly_unflagged(self):
        result, X, *_ = make_fit(seed=4)
        assert len(outlier_indices(result, X, threshold=4.0)) == 0

    def test_studentized_residuals_standardized(self):
        result, X, *_ = make_fit(n=500, seed=5)
        r = studentized_residuals(result, X)
        assert np.std(r) == pytest.approx(1.0, abs=0.15)

    def test_threshold_validated(self):
        result, X, *_ = make_fit()
        with pytest.raises(ValueError):
            outlier_indices(result, X, threshold=0.0)


class TestModelIntegration:
    def test_cost_model_prediction_interval(self, session_g1_build):
        _, outcome = session_g1_build
        model = outcome.model
        obs = outcome.observations[0]
        point, lower, upper = model.predict_with_interval(
            obs.values, obs.probing_cost
        )
        assert lower < point < upper
        assert point == pytest.approx(model.predict(obs.values, obs.probing_cost))

    def test_interval_survives_serialization(self, session_g1_build):
        from repro.core.model import MultiStateCostModel

        _, outcome = session_g1_build
        clone = MultiStateCostModel.from_dict(outcome.model.to_dict())
        obs = outcome.observations[0]
        original = outcome.model.predict_with_interval(obs.values, obs.probing_cost)
        restored = clone.predict_with_interval(obs.values, obs.probing_cost)
        assert restored == pytest.approx(original)

    def test_interval_mostly_covers_observations(self, session_g1_build):
        _, outcome = session_g1_build
        covered = 0
        sample = outcome.observations[:60]
        for obs in sample:
            _, lower, upper = outcome.model.predict_with_interval(
                obs.values, obs.probing_cost, confidence=0.95
            )
            covered += lower <= obs.cost <= upper
        assert covered / len(sample) > 0.8
