"""Unit and property tests for the OLS implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.mlr.linalg import add_intercept
from repro.mlr.ols import fit_ols


def make_data(n=60, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(0, 10, n)
    x2 = rng.uniform(0, 5, n)
    y = 3.0 + 2.0 * x1 - 1.5 * x2 + rng.normal(0, noise, n)
    return np.column_stack([x1, x2]), y


class TestFitting:
    def test_recovers_exact_coefficients_noiselessly(self):
        X, _ = make_data(noise=0.0)
        y = 3.0 + 2.0 * X[:, 0] - 1.5 * X[:, 1]
        result = fit_ols(add_intercept(X), y)
        assert result.coefficients == pytest.approx([3.0, 2.0, -1.5], abs=1e-8)
        assert result.r_squared == pytest.approx(1.0)
        assert result.standard_error == pytest.approx(0.0, abs=1e-7)

    def test_near_recovery_with_noise(self):
        X, y = make_data(noise=0.3)
        result = fit_ols(add_intercept(X), y)
        assert result.coefficients == pytest.approx([3.0, 2.0, -1.5], abs=0.5)
        assert result.r_squared > 0.95

    def test_r_squared_matches_scipy_for_simple_regression(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, 50)
        y = 1.0 + 4.0 * x + rng.normal(0, 0.2, 50)
        result = fit_ols(add_intercept(x.reshape(-1, 1)), y)
        lin = scipy_stats.linregress(x, y)
        assert result.r_squared == pytest.approx(lin.rvalue**2, abs=1e-10)
        assert result.coefficients[1] == pytest.approx(lin.slope, abs=1e-10)

    def test_see_is_paper_equation_3(self):
        X, y = make_data()
        result = fit_ols(add_intercept(X), y)
        n, p = X.shape[0], 3
        manual = np.sqrt(np.sum(result.residuals**2) / (n - p))
        assert result.standard_error == pytest.approx(manual)

    def test_f_test_significant_for_real_relationship(self):
        X, y = make_data()
        result = fit_ols(add_intercept(X), y)
        assert result.f_statistic is not None
        assert result.is_significant(alpha=0.01)

    def test_f_test_insignificant_for_pure_noise(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, (40, 2))
        y = rng.normal(0, 1, 40)
        result = fit_ols(add_intercept(X), y)
        assert not result.is_significant(alpha=0.01)

    def test_more_observations_than_parameters_required(self):
        with pytest.raises(ValueError):
            fit_ols(np.ones((2, 3)), np.ones(2))

    def test_term_names_length_checked(self):
        X, y = make_data()
        with pytest.raises(ValueError):
            fit_ols(add_intercept(X), y, term_names=("a",))


class TestInference:
    def test_coefficient_std_errors_finite(self):
        X, y = make_data()
        result = fit_ols(add_intercept(X), y)
        assert np.all(np.isfinite(result.coef_std_errors))
        assert np.all(result.coef_std_errors > 0)

    def test_t_pvalues_small_for_strong_effects(self):
        X, y = make_data(noise=0.1)
        result = fit_ols(add_intercept(X), y)
        assert result.t_pvalues[1] < 1e-6
        assert result.t_pvalues[2] < 1e-6

    def test_irrelevant_variable_has_large_pvalue(self):
        rng = np.random.default_rng(11)
        x1 = rng.uniform(0, 10, 80)
        junk = rng.uniform(0, 10, 80)
        y = 2.0 * x1 + rng.normal(0, 0.5, 80)
        result = fit_ols(add_intercept(np.column_stack([x1, junk])), y)
        assert result.t_pvalues[2] > 0.05


class TestPrediction:
    def test_predict_matches_fitted_on_training_rows(self):
        X, y = make_data()
        design = add_intercept(X)
        result = fit_ols(design, y)
        assert result.predict(design) == pytest.approx(result.fitted)

    def test_predict_column_mismatch_rejected(self):
        X, y = make_data()
        result = fit_ols(add_intercept(X), y)
        with pytest.raises(ValueError):
            result.predict(np.ones((2, 2)))

    def test_coefficient_lookup_by_name(self):
        X, y = make_data()
        result = fit_ols(add_intercept(X), y, term_names=("b0", "x1", "x2"))
        assert result.coefficient("x1") == pytest.approx(result.coefficients[1])
        with pytest.raises(KeyError):
            result.coefficient("nope")

    def test_summary_renders(self):
        X, y = make_data()
        text = fit_ols(add_intercept(X), y).summary()
        assert "R^2" in text and "SEE" in text


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(10, 80),
)
def test_property_residuals_orthogonal_to_design(seed, n):
    """OLS residuals are orthogonal to every design column."""
    rng = np.random.default_rng(seed)
    X = add_intercept(rng.uniform(-5, 5, (n, 2)))
    y = rng.normal(0, 1, n)
    result = fit_ols(X, y)
    scale = max(1.0, float(np.abs(y).max()) * n)
    assert np.allclose(X.T @ result.residuals / scale, 0.0, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_r_squared_in_unit_interval(seed):
    rng = np.random.default_rng(seed)
    X = add_intercept(rng.uniform(0, 1, (30, 3)))
    y = rng.normal(0, 1, 30)
    result = fit_ols(X, y)
    assert 0.0 <= result.r_squared <= 1.0
    assert result.adjusted_r_squared <= result.r_squared + 1e-12
