"""Property-based tests for the online estimators (hypothesis).

The headline law: streaming rows one at a time through
:class:`~repro.mlr.rls.RecursiveLeastSquares` with no forgetting
converges to the batch :func:`repro.mlr.ols.fit_ols` coefficients —
including on rank-deficient designs (same fitted values) and the
single-parameter edge case.  NLMS is checked for its per-sample error
contraction and both estimators for resume-identical dict round-trips.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.core.strategy import RLSStrategy, resolve_strategy
from repro.mlr.ols import fit_ols
from repro.mlr.rls import (
    NormalizedSGD,
    RecursiveLeastSquares,
    rls_fit,
    sgd_fit,
)

from ..core.synthetic import stepped_sample

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _random_system(seed: int, n: int, p: int, noise: float = 0.25):
    rng = np.random.default_rng(seed)
    X = np.column_stack([np.ones(n), rng.normal(size=(n, p))])
    beta = rng.normal(scale=3.0, size=p + 1)
    y = X @ beta + rng.normal(scale=noise, size=n)
    return X, y


class TestRLSConvergesToOLS:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, n=st.integers(10, 60), p=st.integers(1, 5))
    def test_one_sample_at_a_time_matches_batch_ols(self, seed, n, p):
        assume(n >= p + 4)
        X, y = _random_system(seed, n, p)
        assume(np.linalg.cond(X) < 1e4)
        estimator = RecursiveLeastSquares(p + 1)
        for row, target in zip(X, y):
            estimator.update(row, float(target))
        expected = fit_ols(X, y).coefficients
        np.testing.assert_allclose(
            estimator.coefficients, expected, rtol=1e-3, atol=1e-4
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, n=st.integers(10, 60), p=st.integers(1, 4))
    def test_rank_deficient_designs_agree_on_fitted_values(self, seed, n, p):
        """Duplicated column: coefficients are not identified, but the
        ridge-stabilised RLS solution must produce the same fitted
        values as the minimum-norm least-squares solution."""
        assume(n >= p + 5)
        X, y = _random_system(seed, n, p)
        assume(np.linalg.cond(X) < 1e4)
        X_dup = np.column_stack([X, X[:, -1]])
        theta = rls_fit(X_dup, y)
        expected, *_ = np.linalg.lstsq(X_dup, y, rcond=None)
        scale = float(np.abs(y).max()) + 1.0
        np.testing.assert_allclose(
            X_dup @ theta, X_dup @ expected, atol=1e-3 * scale
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS, n=st.integers(8, 40))
    def test_single_parameter_edge_case(self, seed, n):
        """Intercept-only system — the smallest design RLS can see."""
        rng = np.random.default_rng(seed)
        y = rng.normal(loc=5.0, size=n)
        X = np.ones((n, 1))
        theta = rls_fit(X, y)
        np.testing.assert_allclose(theta[0], y.mean(), rtol=1e-4, atol=1e-5)

    def test_single_state_qualitative_fit_matches_ols(self):
        """One qualitative state: RLS batch derivation over the GENERAL
        design equals the OLS multi-states fit."""
        X, y, probing = stepped_sample(true_states=1, n=90, seed=5)
        fit = fit_qualitative(X, y, probing, uniform_partition(0.0, 1.0, 1), ("x",))
        ols_model = MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")
        rls_model = RLSStrategy().finalize(
            MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma"), fit
        )
        assert rls_model.num_states == 1
        np.testing.assert_allclose(
            rls_model.coefficients, ols_model.coefficients, rtol=1e-4, atol=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(12, 50), p=st.integers(1, 4))
    def test_resume_from_dict_is_identical(self, seed, n, p):
        X, y = _random_system(seed, n, p)
        split = n // 2
        straight = RecursiveLeastSquares(p + 1)
        resumed = RecursiveLeastSquares(p + 1)
        for row, target in zip(X[:split], y[:split]):
            straight.update(row, float(target))
            resumed.update(row, float(target))
        resumed = RecursiveLeastSquares.from_dict(resumed.to_dict())
        for row, target in zip(X[split:], y[split:]):
            straight.update(row, float(target))
            resumed.update(row, float(target))
        np.testing.assert_allclose(
            resumed.coefficients, straight.coefficients, rtol=1e-12, atol=1e-12
        )
        assert resumed.updates == straight.updates == n


class TestForgetting:
    def test_forgetting_tracks_a_regime_shift(self):
        """With forgetting < 1 the estimate follows the new regime; with
        forgetting = 1 it stays anchored to the blended history."""
        rng = np.random.default_rng(7)
        X = np.column_stack([np.ones(400), rng.normal(size=400)])
        y = np.concatenate([X[:200] @ [1.0, 2.0], X[200:] @ [5.0, -3.0]])
        tracking = RecursiveLeastSquares(2, forgetting=0.9)
        anchored = RecursiveLeastSquares(2, forgetting=1.0)
        for row, target in zip(X, y):
            tracking.update(row, float(target))
            anchored.update(row, float(target))
        new_regime = np.array([5.0, -3.0])
        assert np.linalg.norm(tracking.coefficients - new_regime) < np.linalg.norm(
            anchored.coefficients - new_regime
        )
        np.testing.assert_allclose(tracking.coefficients, new_regime, atol=0.05)


class TestNormalizedSGD:
    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS, p=st.integers(1, 5), mu=st.floats(0.05, 1.0))
    def test_repeated_update_contracts_the_error(self, seed, p, mu):
        """NLMS on one fixed sample: |error| shrinks geometrically."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=p)
        assume(float(x @ x) > 1e-6)
        estimator = NormalizedSGD(p, learning_rate=mu)
        errors = [abs(estimator.update(x, 10.0)) for _ in range(8)]
        for before, after in zip(errors, errors[1:]):
            assert after <= before + 1e-9

    def test_sgd_fit_anneals_toward_least_squares(self):
        X, y = _random_system(11, 60, 2, noise=0.1)
        warm = fit_ols(X, y).coefficients
        theta = sgd_fit(X, y, theta=warm.copy())
        # Annealed batch passes must stay near the warm-started optimum.
        np.testing.assert_allclose(theta, warm, rtol=0.05, atol=0.05)

    def test_round_trip_resume(self):
        X, y = _random_system(3, 30, 2)
        estimator = NormalizedSGD(3)
        for row, target in zip(X[:15], y[:15]):
            estimator.update(row, float(target))
        clone = NormalizedSGD.from_dict(estimator.to_dict())
        for row, target in zip(X[15:], y[15:]):
            estimator.update(row, float(target))
            clone.update(row, float(target))
        np.testing.assert_allclose(clone.coefficients, estimator.coefficients)
        assert clone.updates == estimator.updates

    def test_learning_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            NormalizedSGD(2, learning_rate=0.0)
        with pytest.raises(ValueError):
            NormalizedSGD(2, learning_rate=2.5)


class TestValidation:
    def test_bad_shapes_rejected(self):
        estimator = RecursiveLeastSquares(3)
        with pytest.raises(ValueError):
            estimator.update(np.ones(2), 1.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, forgetting=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, delta=-1.0)

    def test_updater_warm_starts_from_model_coefficients(self):
        X, y, probing = stepped_sample(true_states=2, n=100, seed=2)
        fit = fit_qualitative(X, y, probing, uniform_partition(0.0, 1.0, 2), ("x",))
        model = RLSStrategy().finalize(
            MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma"), fit
        )
        updater = resolve_strategy("mlr.rls").make_updater(model)
        np.testing.assert_array_equal(updater.coefficients, model.coefficients)
