"""Unit tests for the partial F test."""

import numpy as np
import pytest

from repro.mlr.ftest import partial_f_test
from repro.mlr.linalg import add_intercept
from repro.mlr.ols import fit_ols


def make_models(effect: float, n: int = 120, seed: int = 0):
    """Fit y ~ x1 (reduced) and y ~ x1 + x2 (full), with x2's true
    coefficient equal to *effect*."""
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(0, 10, n)
    x2 = rng.uniform(0, 10, n)
    y = 1.0 + 2.0 * x1 + effect * x2 + rng.normal(0, 1.0, n)
    full = fit_ols(add_intercept(np.column_stack([x1, x2])), y)
    reduced = fit_ols(add_intercept(x1.reshape(-1, 1)), y)
    return full, reduced


class TestPartialFTest:
    def test_real_effect_is_significant(self):
        full, reduced = make_models(effect=1.5)
        result = partial_f_test(full, reduced)
        assert result.significant(alpha=0.01)
        assert result.df_numerator == 1
        assert result.p_value < 1e-6

    def test_no_effect_is_insignificant(self):
        full, reduced = make_models(effect=0.0, seed=3)
        result = partial_f_test(full, reduced)
        assert not result.significant(alpha=0.01)
        assert result.p_value > 0.01

    def test_single_extra_term_equals_t_test_squared(self):
        full, reduced = make_models(effect=0.7, seed=5)
        result = partial_f_test(full, reduced)
        # With one extra term, F = t^2 of that coefficient.
        t = full.t_statistics[2]
        assert result.f_statistic == pytest.approx(t * t, rel=1e-6)

    def test_different_n_rejected(self):
        full, _ = make_models(effect=1.0)
        _, other = make_models(effect=1.0, n=50)
        with pytest.raises(ValueError):
            partial_f_test(full, other)

    def test_non_nested_direction_rejected(self):
        full, reduced = make_models(effect=1.0)
        with pytest.raises(ValueError):
            partial_f_test(reduced, full)

    def test_better_reduced_fit_rejected(self):
        """A 'reduced' model that fits better than the 'full' model is a
        usage error (the models cannot be nested)."""
        rng = np.random.default_rng(7)
        x1 = rng.uniform(0, 10, 60)
        x2 = rng.uniform(0, 10, 60)
        y = 3.0 * x2 + rng.normal(0, 0.1, 60)
        # 'full' lacks the true predictor; 'reduced' has it.
        full = fit_ols(add_intercept(np.column_stack([x1, rng.uniform(0, 1, 60)])), y)
        reduced = fit_ols(add_intercept(x2.reshape(-1, 1)), y)
        with pytest.raises(ValueError):
            partial_f_test(full, reduced)

    def test_qualitative_states_justified_by_partial_f(self):
        """Multi-state terms over a one-state model pass the partial F
        test when the data truly has states — tying the classical test to
        the paper's setting."""
        from repro.core.fitting import fit_qualitative
        from repro.core.partition import uniform_partition

        from ..core.synthetic import stepped_sample

        X, y, probing = stepped_sample(true_states=2, n=300, noise=0.3, seed=9)
        one = fit_qualitative(X, y, probing, uniform_partition(0, 1, 1), ("x",))
        two = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
        result = partial_f_test(two.ols, one.ols)
        assert result.significant(alpha=0.001)
