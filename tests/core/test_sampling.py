"""Unit and property tests for sampling rules and collection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import G1, G3
from repro.core.probing import ProbingQuery
from repro.core.sampling import (
    OBSERVATIONS_PER_PARAMETER,
    SamplingPlan,
    collect_observations,
    minimum_observations,
    recommended_sample_size,
    split_train_test,
)
from repro.core.variables import Observation, UNARY_VARIABLES
from repro.engine.query import SelectQuery


class TestProposition41:
    def test_paper_formula(self):
        # 10 * ((n+1) * m + 1)
        assert minimum_observations(3, 4) == 10 * (4 * 4 + 1)
        assert minimum_observations(0, 1) == 20

    def test_static_case_is_m_equals_one(self):
        assert minimum_observations(5, 1) == 10 * (6 + 1)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            minimum_observations(-1, 2)
        with pytest.raises(ValueError):
            minimum_observations(2, 0)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(0, 12), m=st.integers(1, 10))
    def test_property_monotone_and_sufficient(self, n, m):
        """More variables or states never need fewer samples, and the
        bound always covers 10 observations per parameter."""
        base = minimum_observations(n, m)
        assert minimum_observations(n + 1, m) > base
        assert minimum_observations(n, m + 1) > base
        n_parameters = (n + 1) * m
        assert base >= OBSERVATIONS_PER_PARAMETER * n_parameters

    def test_recommended_uses_basic_plus_allowance(self):
        size = recommended_sample_size(UNARY_VARIABLES, max_states=6)
        assert size == minimum_observations(len(UNARY_VARIABLES.basic) + 2, 6)

    def test_recommended_validates_args(self):
        with pytest.raises(ValueError):
            recommended_sample_size(UNARY_VARIABLES, max_states=0)
        with pytest.raises(ValueError):
            recommended_sample_size(UNARY_VARIABLES, 3, secondary_allowance=-1)

    def test_paper_sizes_reproduced(self):
        # §5 used 370 unary / 550 join samples (m = 6, |B|+2 variables).
        assert recommended_sample_size(G1.variables, 6) == 370
        assert recommended_sample_size(G3.variables, 6) == 550


class TestCollection:
    def test_each_observation_paired_with_probe(self, dynamic_database):
        probe = ProbingQuery(dynamic_database, SelectQuery("t1", ("a",)))
        queries = [SelectQuery("t1", ("a",))] * 5
        observations = collect_observations(dynamic_database, queries, probe)
        assert len(observations) == 5
        for obs in observations:
            assert obs.probing_cost > 0
            assert obs.cost > 0
            assert "no" in obs.values

    def test_pause_advances_environment(self, dynamic_database):
        probe = ProbingQuery(dynamic_database, SelectQuery("t1", ("a",)))
        start = dynamic_database.environment.now
        collect_observations(
            dynamic_database,
            [SelectQuery("t1", ("a",))] * 3,
            probe,
            SamplingPlan(pause_seconds=100.0),
        )
        assert dynamic_database.environment.now >= start + 300.0

    def test_probing_costs_vary_with_contention(self, dynamic_database):
        probe = ProbingQuery(dynamic_database, SelectQuery("t1", ("a",)))
        observations = collect_observations(
            dynamic_database,
            [SelectQuery("t1", ("a",))] * 20,
            probe,
            SamplingPlan(pause_seconds=60.0),
        )
        probes = [o.probing_cost for o in observations]
        assert max(probes) > 2 * min(probes)

    def test_negative_pause_rejected(self, dynamic_database):
        probe = ProbingQuery(dynamic_database, SelectQuery("t1", ("a",)))
        with pytest.raises(ValueError):
            collect_observations(
                dynamic_database, [], probe, SamplingPlan(pause_seconds=-1)
            )


class TestSplit:
    def make(self, n):
        return [
            Observation(cost=float(i), probing_cost=0.1, values={}) for i in range(n)
        ]

    def test_partition_is_exact(self, rng):
        observations = self.make(40)
        train, test = split_train_test(observations, 0.25, rng)
        assert len(train) + len(test) == 40
        assert len(test) == 10
        ids = {id(o) for o in observations}
        assert {id(o) for o in train} | {id(o) for o in test} == ids

    def test_at_least_one_test_row(self, rng):
        train, test = split_train_test(self.make(3), 0.01, rng)
        assert len(test) == 1

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            split_train_test(self.make(5), 0.0, rng)
        with pytest.raises(ValueError):
            split_train_test(self.make(5), 1.0, rng)

    def test_deterministic_given_rng(self):
        observations = self.make(20)
        a = split_train_test(observations, 0.3, np.random.default_rng(1))
        b = split_train_test(observations, 0.3, np.random.default_rng(1))
        assert [o.cost for o in a[1]] == [o.cost for o in b[1]]
