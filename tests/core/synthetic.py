"""Synthetic per-state regression data for core-algorithm tests.

Generates samples with a *known* number of true contention states, each
with its own intercept and slope — the ground truth the determination
algorithms are supposed to recover.
"""

from __future__ import annotations

import numpy as np


def stepped_sample(
    true_states: int = 3,
    n: int = 300,
    noise: float = 0.05,
    seed: int = 0,
    probing_max: float = 1.0,
    clustered: bool = False,
):
    """(X, y, probing) with distinct per-state intercepts and slopes.

    The probing-cost axis [0, probing_max] is split evenly into
    ``true_states`` bands; within band s the response is
    ``(1 + 2 s) + 0.5 (1 + s) x`` plus Gaussian noise.  With
    ``clustered=True`` the probing costs concentrate near each band's
    centre instead of filling it uniformly.
    """
    rng = np.random.default_rng(seed)
    if clustered:
        centers = (np.arange(true_states) + 0.5) * probing_max / true_states
        which = rng.integers(0, true_states, n)
        probing = centers[which] + rng.normal(0, probing_max / (12 * true_states), n)
        probing = np.clip(probing, 0, probing_max)
    else:
        probing = rng.uniform(0, probing_max, n)
    band = np.minimum(
        (probing / probing_max * true_states).astype(int), true_states - 1
    )
    x = rng.uniform(0, 100, n)
    intercept = 1.0 + 2.0 * band
    slope = 0.5 * (1.0 + band)
    y = intercept + slope * x + rng.normal(0, noise, n) * (1 + x / 50)
    return x.reshape(-1, 1), y, probing
