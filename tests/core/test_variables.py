"""Unit tests for explanatory-variable sets and observation extraction."""

import pytest

from repro.core.variables import (
    JOIN_VARIABLES,
    Observation,
    UNARY_VARIABLES,
    check_observations,
    extract_variables,
    observation_from_result,
    probing_costs,
    responses,
    values_matrix,
    variables_for,
)
from repro.engine.predicate import Comparison
from repro.engine.query import JoinQuery, SelectQuery


class TestVariableSets:
    def test_unary_matches_paper_table3(self):
        assert UNARY_VARIABLES.basic == ("no", "ni", "nr")
        assert set(UNARY_VARIABLES.secondary) == {"lo", "lr", "tlo", "tlr"}

    def test_join_matches_paper_table3(self):
        assert set(JOIN_VARIABLES.basic) == {"n1", "n2", "ni1", "ni2", "nr", "nixni"}
        assert len(JOIN_VARIABLES.secondary) == 6

    def test_membership(self):
        assert "no" in UNARY_VARIABLES
        assert "nixni" in JOIN_VARIABLES
        assert "zz" not in UNARY_VARIABLES

    def test_variables_for_query_shape(self):
        assert variables_for(SelectQuery("t")) is UNARY_VARIABLES
        assert variables_for(JoinQuery("a", "b", "x", "y")) is JOIN_VARIABLES
        with pytest.raises(TypeError):
            variables_for("select * from t")


class TestExtraction:
    def test_unary_extraction(self, small_database):
        result = small_database.execute(
            SelectQuery("t1", ("a", "b"), Comparison("a", "<", 200))
        )
        values = extract_variables(result)
        table = small_database.catalog.table("t1")
        assert values["no"] == table.cardinality
        assert values["nr"] == result.result.cardinality
        assert values["lo"] == table.tuple_length
        assert values["lr"] == table.schema.projected_tuple_length(("a", "b"))
        assert values["tlo"] == values["no"] * values["lo"]
        assert values["tlr"] == values["nr"] * values["lr"]
        # Index scan on a: the intermediate is the index-range subset.
        assert values["ni"] == result.infos[0].intermediate_cardinality

    def test_join_extraction(self, small_database):
        query = JoinQuery(
            "t1", "t2", "c", "c", ("t1.a", "t2.b"), Comparison("b", "<", 50)
        )
        result = small_database.execute(query)
        values = extract_variables(result)
        assert values["n1"] == small_database.catalog.table("t1").cardinality
        assert values["n2"] == small_database.catalog.table("t2").cardinality
        assert values["nixni"] == values["ni1"] * values["ni2"]
        assert values["nr"] == result.result.cardinality
        assert values["lr"] == result.result.tuple_length

    def test_observation_from_result(self, small_database):
        result = small_database.execute(SelectQuery("t1", ("a",)))
        obs = observation_from_result(result, probing_cost=0.5, plan=result.plan)
        assert obs.cost == result.elapsed
        assert obs.probing_cost == 0.5
        assert obs.metadata["plan"] == result.plan
        assert obs.contention_level == result.contention_level


class TestObservationHelpers:
    def make_obs(self, cost=1.0, probing=0.1, **values):
        return Observation(cost=cost, probing_cost=probing, values=values)

    def test_vector_order(self):
        obs = self.make_obs(no=1.0, nr=2.0)
        assert obs.vector(("nr", "no")) == [2.0, 1.0]

    def test_vector_missing_variable(self):
        with pytest.raises(KeyError):
            self.make_obs(no=1.0).vector(("nr",))

    def test_matrix_and_responses(self):
        observations = [self.make_obs(cost=float(i), no=float(i)) for i in range(3)]
        assert values_matrix(observations, ("no",)) == [[0.0], [1.0], [2.0]]
        assert responses(observations) == [0.0, 1.0, 2.0]
        assert probing_costs(observations) == [0.1, 0.1, 0.1]

    def test_check_observations_passes(self):
        check_observations([self.make_obs(no=1.0)], ("no",))

    def test_check_observations_missing_variable(self):
        with pytest.raises(ValueError):
            check_observations([self.make_obs(no=1.0)], ("no", "nr"))

    def test_check_observations_negative_cost(self):
        with pytest.raises(ValueError):
            check_observations([self.make_obs(cost=-1.0, no=1.0)], ("no",))

    def test_check_observations_nan_probing(self):
        with pytest.raises(ValueError):
            check_observations(
                [Observation(cost=1.0, probing_cost=float("nan"), values={"no": 1.0})],
                ("no",),
            )
