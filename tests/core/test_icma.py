"""Unit tests for ICMA (clustering-based state determination)."""

import numpy as np

from repro.core.icma import clustered_partitioner, determine_states_icma
from repro.core.iupma import StatesConfig, determine_states_iupma

from .synthetic import stepped_sample


class TestClusteredPartitioner:
    def test_single_state_always_available(self):
        probing = np.array([0.1, 0.2, 0.9])
        partitioner = clustered_partitioner(probing, floor=1)
        states = partitioner(1)
        assert states is not None and states.num_states == 1

    def test_boundaries_fall_in_gaps(self):
        probing = np.concatenate(
            [np.linspace(0.0, 0.1, 30), np.linspace(0.8, 1.0, 30)]
        )
        partitioner = clustered_partitioner(probing, floor=3)
        states = partitioner(2)
        assert states is not None
        (boundary,) = states.boundaries
        assert 0.1 < boundary < 0.8

    def test_infeasible_count_returns_none(self):
        probing = np.array([0.5] * 20)  # no spread at all
        partitioner = clustered_partitioner(probing, floor=2)
        assert partitioner(3) is None

    def test_thin_cluster_merged_prevents_count(self):
        # 2 fat clusters + 1 singleton: asking for 3 states with floor 5
        # is infeasible after merge_small_clusters.
        probing = np.concatenate(
            [np.full(20, 0.1), np.full(20, 0.9), [0.5]]
        ) + np.linspace(0, 0.01, 41)
        partitioner = clustered_partitioner(probing, floor=5)
        assert partitioner(3) is None
        assert partitioner(2) is not None


class TestICMA:
    def test_recovers_clustered_states(self):
        X, y, probing = stepped_sample(
            true_states=3, n=500, noise=0.05, seed=1, clustered=True
        )
        result = determine_states_icma(X, y, probing, ("x",))
        assert result.num_states == 3
        assert result.fit.r_squared > 0.97
        assert result.algorithm == "icma"

    def test_beats_or_matches_iupma_on_clustered_probing(self):
        X, y, probing = stepped_sample(
            true_states=3, n=600, noise=0.2, seed=2, clustered=True
        )
        config = StatesConfig()
        icma = determine_states_icma(X, y, probing, ("x",), config)
        iupma = determine_states_iupma(X, y, probing, ("x",), config)
        assert icma.fit.standard_error <= iupma.fit.standard_error * 1.05

    def test_boundaries_avoid_cluster_interiors(self):
        X, y, probing = stepped_sample(
            true_states=2, n=400, noise=0.05, seed=3, clustered=True
        )
        result = determine_states_icma(X, y, probing, ("x",))
        # True band centres are 0.25 and 0.75; the boundary must sit
        # between the clusters, near 0.5.
        assert result.num_states == 2
        (boundary,) = result.states.boundaries
        assert 0.35 < boundary < 0.65

    def test_uniform_probing_still_works(self):
        X, y, probing = stepped_sample(true_states=2, n=400, noise=0.05, seed=4)
        result = determine_states_icma(X, y, probing, ("x",))
        assert result.num_states >= 2
        assert result.fit.r_squared > 0.9


class TestDegenerateInputs:
    def test_duplicate_probing_costs_handled(self):
        """Duplicate probing costs can make cluster extents touch; the
        partitioner must signal infeasibility, not crash."""
        import numpy as np

        from repro.core.icma import clustered_partitioner

        probing = np.array([0.1, 0.1, 0.1, 0.9, 0.9, 0.9])
        partitioner = clustered_partitioner(probing, floor=1)
        # m=2 splits cleanly between the two duplicate groups.
        assert partitioner(2) is not None
        # Any m requiring a split inside a duplicate run is infeasible
        # (or resolves to fewer clusters) — either way, no exception.
        for m in (3, 4, 5, 6):
            partitioner(m)  # must not raise
