"""Unit tests for cost-model maintenance (§2 occasionally-changing factors)."""

import pytest

from repro.core.builder import CostModelBuilder
from repro.core.classification import G1
from repro.core.maintenance import (
    CatalogSnapshot,
    ChangeDetector,
    ModelMaintainer,
)
from repro.workload import make_site


@pytest.fixture
def site():
    return make_site("maint_site", environment_kind="uniform", scale=0.008, seed=33)


class TestChangeDetector:
    def test_no_changes_initially(self, site):
        assert ChangeDetector(site.database).detect() == []

    def test_small_growth_not_significant(self, site):
        detector = ChangeDetector(site.database, cardinality_drift=0.2)
        table = site.database.catalog.table("R1")
        row = table.row(0)
        for _ in range(int(table.cardinality * 0.05)):
            table.insert(row)
        assert detector.detect() == []

    def test_accumulated_growth_detected(self, site):
        detector = ChangeDetector(site.database, cardinality_drift=0.2)
        table = site.database.catalog.table("R1")
        row = table.row(0)
        for _ in range(int(table.cardinality * 0.5)):
            table.insert(row)
        changes = detector.detect()
        assert any(c.kind == "cardinality" and c.table == "R1" for c in changes)

    def test_new_index_detected(self, site):
        detector = ChangeDetector(site.database)
        site.database.create_index("extra", "R1", "a5")
        changes = detector.detect()
        assert any(c.kind == "indexes" and c.table == "R1" for c in changes)

    def test_new_and_dropped_tables_detected(self, site):
        detector = ChangeDetector(site.database)
        from repro.engine.schema import Column
        from repro.engine.types import DataType

        site.database.create_table("extra", [Column("a", DataType.INT)], [(1,)])
        site.database.catalog.drop_table("R2")
        kinds = {(c.kind, c.table) for c in detector.detect()}
        assert ("table_added", "extra") in kinds
        assert ("table_dropped", "R2") in kinds

    def test_rebase_clears_changes(self, site):
        detector = ChangeDetector(site.database)
        site.database.create_index("extra", "R1", "a5")
        assert detector.detect()
        detector.rebase()
        assert detector.detect() == []

    def test_invalid_drift_rejected(self, site):
        with pytest.raises(ValueError):
            ChangeDetector(site.database, cardinality_drift=0.0)

    def test_snapshot_capture_contents(self, site):
        snap = CatalogSnapshot.capture(site.database)
        assert "R1" in snap.tables
        assert snap.tables["R3"].clustered_on == "a2"
        assert ("a1", "nonclustered") in snap.tables["R1"].indexed_columns


class TestModelMaintainer:
    def make_maintainer(self, site, **kwargs):
        builder = CostModelBuilder(site.database)
        maintainer = ModelMaintainer(builder, **kwargs)
        source = lambda n: site.generator.queries_for(G1, n)
        outcome = maintainer.register(G1, source, sample_count=60)
        return maintainer, outcome

    def test_initial_build(self, site):
        maintainer, outcome = self.make_maintainer(site)
        assert outcome is not None
        assert maintainer.models["G1"].model.class_label == "G1"
        assert maintainer.history[0].reasons == ("initial build",)

    def test_nothing_due_when_stable(self, site):
        maintainer, _ = self.make_maintainer(site)
        assert maintainer.due() == {}
        assert maintainer.maintain() == {}

    def test_catalog_change_triggers_rebuild(self, site):
        maintainer, first = self.make_maintainer(site)
        site.database.create_index("extra", "R1", "a7")
        due = maintainer.due()
        assert "G1" in due
        rebuilt = maintainer.maintain()
        assert "G1" in rebuilt
        assert rebuilt["G1"] is not first
        # The trigger is consumed: no further rebuilds until new changes.
        assert maintainer.maintain() == {}

    def test_periodic_rebuild(self, site):
        maintainer, _ = self.make_maintainer(site, rebuild_period_seconds=1000.0)
        assert maintainer.maintain() == {}  # just built
        site.environment.advance(2000.0)
        rebuilt = maintainer.maintain()
        assert "G1" in rebuilt
        assert any("period" in r for r in maintainer.history[-1].reasons)

    def test_register_without_building(self, site):
        builder = CostModelBuilder(site.database)
        maintainer = ModelMaintainer(builder)
        result = maintainer.register(
            G1, lambda n: site.generator.queries_for(G1, n), 60, build_now=False
        )
        assert result is None
        assert "G1" not in maintainer.models
        # An unbuilt registration is immediately due (never built).
        maintainer.rebuild_period_seconds = 10.0
        assert "G1" in maintainer.due()

    def test_default_sample_count_uses_prop41(self, site):
        builder = CostModelBuilder(site.database)
        maintainer = ModelMaintainer(builder)
        maintainer.register(
            G1,
            lambda n: site.generator.queries_for(G1, min(n, 30)),
            build_now=False,
        )
        assert (
            maintainer._registrations["G1"].sample_count
            == builder.sample_size(G1)
        )

    def test_invalid_period_rejected(self, site):
        builder = CostModelBuilder(site.database)
        with pytest.raises(ValueError):
            ModelMaintainer(builder, rebuild_period_seconds=0.0)
