"""Unit tests for the static query sampling baseline."""

from repro.core.classification import G1
from repro.core.sampling import minimum_observations
from repro.core.static_method import StaticQuerySampling, derive_static_cost_model


class TestStaticQuerySampling:
    def test_build_gives_one_state(self, session_site):
        sampler = StaticQuerySampling(session_site.database)
        queries = session_site.generator.queries_for(G1, 80)
        outcome = sampler.build(G1, queries)
        assert outcome.model.num_states == 1
        assert outcome.model.algorithm == "static"

    def test_sample_size_uses_m_equals_one(self, session_site):
        sampler = StaticQuerySampling(session_site.database)
        expected = minimum_observations(
            len(G1.variables.basic) + sampler.builder.config.secondary_allowance, 1
        )
        assert sampler.sample_size(G1) == expected

    def test_wrapper_matches_builder_function(self, session_g1_build):
        builder, outcome = session_g1_build
        direct = derive_static_cost_model(outcome.observations, G1, builder)
        sampler = StaticQuerySampling(builder.database)
        wrapped = sampler.build_from_observations(outcome.observations, G1)
        assert direct.model.num_states == wrapped.model.num_states == 1
        assert direct.model.variable_names == wrapped.model.variable_names

    def test_static_special_case_of_multistates(self, session_g1_build):
        """§1: the static method is the m = 1 multi-states special case."""
        builder, outcome = session_g1_build
        static = derive_static_cost_model(outcome.observations, G1, builder)
        # Same design machinery: one state means no indicator columns.
        assert static.model.term_names[0] == "b0"
        assert all(":" not in name for name in static.model.term_names)
