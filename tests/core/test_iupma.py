"""Unit tests for Algorithm 3.1 (IUPMA)."""

import numpy as np
import pytest

from repro.core.iupma import StatesConfig, determine_states_iupma
from repro.core.qualitative import ModelForm

from .synthetic import stepped_sample


class TestIUPMA:
    def test_finds_multiple_states_for_stepped_data(self):
        X, y, probing = stepped_sample(true_states=3, n=500, noise=0.05, seed=1)
        result = determine_states_iupma(X, y, probing, ("x",))
        assert result.num_states >= 3
        assert result.fit.r_squared > 0.95
        assert result.algorithm == "iupma"

    def test_single_state_for_flat_data(self):
        # One true state: more states never help enough to accept.
        X, y, probing = stepped_sample(true_states=1, n=300, noise=0.05, seed=2)
        result = determine_states_iupma(X, y, probing, ("x",))
        assert result.num_states == 1

    def test_history_starts_at_one_state(self):
        X, y, probing = stepped_sample(true_states=2, n=300, seed=3)
        result = determine_states_iupma(X, y, probing, ("x",))
        assert result.phase1[0].num_states == 1
        assert result.phase1[0].accepted

    def test_history_counts_are_consecutive(self):
        X, y, probing = stepped_sample(true_states=3, n=500, seed=4)
        result = determine_states_iupma(X, y, probing, ("x",))
        counts = [r.num_states for r in result.phase1]
        assert counts == list(range(1, len(counts) + 1))

    def test_max_states_respected(self):
        X, y, probing = stepped_sample(true_states=6, n=800, noise=0.02, seed=5)
        config = StatesConfig(max_states=3)
        result = determine_states_iupma(X, y, probing, ("x",), config)
        assert result.num_states <= 3

    def test_r_squared_improves_with_accepted_states(self):
        X, y, probing = stepped_sample(true_states=4, n=800, noise=0.02, seed=6)
        result = determine_states_iupma(X, y, probing, ("x",))
        accepted = [r.r_squared for r in result.phase1 if r.accepted]
        assert accepted == sorted(accepted)

    def test_constant_probing_costs_give_single_state(self):
        X, y, _ = stepped_sample(true_states=1, n=200, seed=7)
        probing = np.full(200, 0.5)
        result = determine_states_iupma(X, y, probing, ("x",))
        assert result.num_states == 1

    def test_small_sample_capped_by_identifiability(self):
        X, y, probing = stepped_sample(true_states=4, n=14, noise=0.01, seed=8)
        result = determine_states_iupma(X, y, probing, ("x",))
        # 14 observations cannot support many (n+1)*m-parameter models.
        assert result.num_states <= 3

    def test_merging_recorded_when_over_partitioned(self):
        # Two true states with an off-centre boundary at 0.25: no uniform
        # partition matches it until m=4, at which point the three states
        # covering [0.25, 1.0] share coefficients and must merge.
        rng = np.random.default_rng(9)
        probing = rng.uniform(0, 1, 900)
        x = rng.uniform(0, 100, 900)
        band = (probing >= 0.25).astype(float)
        y = (1.0 + 4.0 * band) + (0.5 + 1.0 * band) * x + rng.normal(0, 0.01, 900)
        config = StatesConfig(min_r2_gain=0.001, min_see_gain=0.001, max_states=4)
        result = determine_states_iupma(x.reshape(-1, 1), y, probing, ("x",), config)
        assert result.num_states == 2
        assert result.merges
        # The surviving boundary sits near the true 0.25 break.
        (boundary,) = result.states.boundaries
        assert boundary == pytest.approx(0.25, abs=0.05)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            determine_states_iupma(
                np.empty((0, 1)), np.empty(0), np.empty(0), ("x",)
            )

    def test_form_override(self):
        X, y, probing = stepped_sample(true_states=2, n=300, seed=10)
        config = StatesConfig(form=ModelForm.PARALLEL)
        result = determine_states_iupma(X, y, probing, ("x",), config)
        assert result.fit.form is ModelForm.PARALLEL

    def test_obs_floor_default_derived_from_variables(self):
        config = StatesConfig()
        assert config.obs_floor(3) == 5
        assert StatesConfig(min_obs_per_state=9).obs_floor(3) == 9
