"""Unit and property tests for the estimate-quality criteria (§5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.core.validation import (
    ACCEPTABLE_FACTOR,
    GOOD_FACTOR,
    VERY_GOOD_RELATIVE_ERROR,
    is_acceptable,
    is_good,
    is_very_good,
    relative_error,
    validate_model,
)
from repro.core.variables import Observation

from .synthetic import stepped_sample


class TestCriteria:
    def test_very_good_boundary(self):
        assert is_very_good(1.29, 1.0)
        assert not is_very_good(1.31, 1.0)
        assert is_very_good(0.71, 1.0)

    def test_good_is_factor_two(self):
        assert is_good(2.0, 1.0)
        assert is_good(0.5, 1.0)
        assert not is_good(2.01, 1.0)
        assert not is_good(0.49, 1.0)

    def test_acceptable_is_order_of_magnitude(self):
        # The paper's own example: 2 minutes vs 4 minutes is good;
        # 2 minutes vs 3 hours is not acceptable.
        assert is_good(4 * 60, 2 * 60)
        assert not is_acceptable(3 * 3600, 2 * 60)
        assert is_acceptable(9.9, 1.0)

    def test_nonpositive_estimate_of_positive_cost_is_bad(self):
        assert not is_good(-1.0, 5.0)
        assert not is_acceptable(0.0, 5.0)

    def test_relative_error_zero_observed(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_constants_match_paper(self):
        assert VERY_GOOD_RELATIVE_ERROR == 0.30
        assert GOOD_FACTOR == 2.0
        assert ACCEPTABLE_FACTOR == 10.0

    @settings(max_examples=100, deadline=None)
    @given(
        estimated=st.floats(0.001, 1e6),
        observed=st.floats(0.001, 1e6),
    )
    def test_property_criteria_are_nested(self, estimated, observed):
        """very good => good => acceptable, always."""
        if is_very_good(estimated, observed):
            assert is_good(estimated, observed)
        if is_good(estimated, observed):
            assert is_acceptable(estimated, observed)

    @settings(max_examples=50, deadline=None)
    @given(est=st.floats(0.001, 1e6), obs=st.floats(0.001, 1e6))
    def test_property_good_is_symmetric(self, est, obs):
        assert is_good(est, obs) == is_good(obs, est)


class TestValidateModel:
    @pytest.fixture
    def model(self):
        X, y, probing = stepped_sample(true_states=2, n=300, noise=0.01, seed=2)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
        return MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")

    def make_obs(self, x, probing, cost):
        return Observation(cost=cost, probing_cost=probing, values={"x": x})

    def test_accurate_model_scores_high(self, model):
        # Ground truth: state0 y=1+0.5x, state1 y=3+x.
        observations = [
            self.make_obs(10.0, 0.2, 6.0),
            self.make_obs(20.0, 0.2, 11.0),
            self.make_obs(10.0, 0.8, 13.0),
            self.make_obs(20.0, 0.8, 23.0),
        ]
        report = validate_model(model, observations)
        assert report.pct_very_good == 100.0
        assert report.pct_good == 100.0
        assert report.n_queries == 4

    def test_wrong_state_estimates_score_low(self, model):
        # Costs from the loaded state, probes claiming the idle state.
        observations = [self.make_obs(100.0, 0.1, 103.0) for _ in range(4)]
        report = validate_model(model, observations)
        assert report.pct_very_good < 100.0

    def test_average_cost_reported(self, model):
        observations = [
            self.make_obs(10.0, 0.2, 4.0),
            self.make_obs(10.0, 0.2, 8.0),
        ]
        report = validate_model(model, observations)
        assert report.average_observed_cost == pytest.approx(6.0)

    def test_training_stats_carried(self, model):
        observations = [self.make_obs(10.0, 0.2, 6.0)]
        report = validate_model(model, observations)
        assert report.r_squared == model.r_squared
        assert report.standard_error == model.standard_error
        assert report.f_significant

    def test_row_is_flat_dict(self, model):
        report = validate_model(model, [self.make_obs(10.0, 0.2, 6.0)])
        row = report.row()
        assert set(row) >= {"R2", "SEE", "very_good_pct", "good_pct"}

    def test_empty_test_set_rejected(self, model):
        with pytest.raises(ValueError):
            validate_model(model, [])
