"""Unit tests for the mixed backward/forward variable selection."""

import numpy as np
import pytest

from repro.core.partition import uniform_partition
from repro.core.selection import SelectionConfig, select_variables


def build_columns(n=400, seed=0):
    """Synthetic sample: cost = per-state(intercept + a*x1 + b*x2) with a
    genuinely useful secondary variable s1, a useless noise variable, and
    a duplicate (collinear) variable."""
    rng = np.random.default_rng(seed)
    probing = rng.uniform(0, 1, n)
    band = (probing >= 0.5).astype(float)
    x1 = rng.uniform(0, 100, n)
    x2 = rng.uniform(0, 50, n)
    s1 = rng.uniform(0, 20, n)
    noise_var = rng.uniform(0, 9, n)  # unrelated to y
    dup = 3.0 * x1  # perfectly collinear with x1
    y = (
        (1 + 2 * band)
        + (0.5 + band) * x1
        + (0.2 + 0.1 * band) * x2
        + 0.8 * s1
        + rng.normal(0, 0.3, n)
    )
    columns = {
        "x1": x1,
        "x2": x2,
        "dup": dup,
        "noise": noise_var,
        "s1": s1,
        "const": np.full(n, 7.0),
    }
    return columns, y, probing


@pytest.fixture
def data():
    return build_columns()


STATES = uniform_partition(0.0, 1.0, 2)


class TestScreening:
    def test_constant_variable_screened_out(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2", "const"), (), STATES
        )
        assert "const" not in result.variables
        assert any(s.action == "screen" and s.variable == "const" for s in result.steps)

    def test_collinear_duplicate_dropped_by_vif(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "dup", "x2"), (), STATES
        )
        kept = set(result.variables)
        assert not {"x1", "dup"} <= kept  # at most one survives
        assert any(s.action == "vif" for s in result.steps)


class TestBackward:
    def test_noise_variable_removed(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2", "noise"), (), STATES
        )
        assert "noise" not in result.variables
        assert {"x1", "x2"} <= set(result.variables)

    def test_informative_variables_kept(self, data):
        columns, y, probing = data
        result = select_variables(columns, y, probing, ("x1", "x2"), (), STATES)
        assert set(result.variables) == {"x1", "x2"}

    def test_never_empties_the_model(self, data):
        columns, y, probing = data
        result = select_variables(columns, y, probing, ("noise",), (), STATES)
        assert len(result.variables) == 1


class TestForward:
    def test_useful_secondary_added(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2"), ("s1", "noise"), STATES
        )
        assert "s1" in result.variables
        assert "noise" not in result.variables

    def test_collinear_secondary_skipped(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2"), ("dup", "s1"), STATES
        )
        assert "dup" not in result.variables
        assert "s1" in result.variables

    def test_forward_improves_see(self, data):
        columns, y, probing = data
        without = select_variables(columns, y, probing, ("x1", "x2"), (), STATES)
        with_s1 = select_variables(
            columns, y, probing, ("x1", "x2"), ("s1",), STATES
        )
        assert with_s1.fit.standard_error < without.fit.standard_error


class TestResultShape:
    def test_fit_uses_selected_variables(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2", "noise"), ("s1",), STATES
        )
        assert result.fit.variable_names == result.variables

    def test_steps_have_details(self, data):
        columns, y, probing = data
        result = select_variables(
            columns, y, probing, ("x1", "x2", "noise"), ("s1",), STATES
        )
        for step in result.steps:
            assert step.action in ("screen", "vif", "remove", "add", "keep")
            assert step.detail

    def test_custom_config_respected(self, data):
        columns, y, probing = data
        # An enormous forward gain requirement blocks every addition.
        config = SelectionConfig(forward_gain=0.99)
        result = select_variables(
            columns, y, probing, ("x1", "x2"), ("s1",), STATES, config=config
        )
        assert "s1" not in result.variables
