"""Unit tests for the derivation report."""

from repro.core.classification import G1
from repro.core.report import derivation_report


class TestDerivationReport:
    def test_covers_every_section(self, session_g1_build):
        _, outcome = session_g1_build
        text = derivation_report(outcome)
        assert "Contention states" in text
        assert "Variable selection" in text
        assert "Fitted model" in text
        assert "phase 1" in text
        assert outcome.model.class_label in text

    def test_lists_every_state_with_counts(self, session_g1_build):
        _, outcome = session_g1_build
        text = derivation_report(outcome)
        for i in range(outcome.model.num_states):
            assert f"s{i}: [" in text
        # Counts sum to the training-sample size across the state lines.
        import re

        counts = [
            int(m) for m in re.findall(r"\((\d+) training observations\)", text)
        ]
        assert sum(counts) == len(outcome.observations)

    def test_selection_steps_rendered(self, session_g1_build):
        _, outcome = session_g1_build
        text = derivation_report(outcome)
        for step in outcome.selection.steps:
            assert step.variable in text

    def test_validation_section_when_test_given(self, session_g1_build):
        builder, outcome = session_g1_build
        test = outcome.observations[:20]
        text = derivation_report(outcome, test_observations=test)
        assert "held-out queries" in text
        assert "very good" in text

    def test_static_outcome_notes_single_state(self, session_g1_build):
        builder, outcome = session_g1_build
        static = builder.build_from_observations(outcome.observations, G1, "static")
        text = derivation_report(static)
        assert "single state by construction" in text
