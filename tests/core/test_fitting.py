"""Unit tests for fitting qualitative models over state partitions."""

import pytest

from repro.core.fitting import fit_qualitative, min_state_count
from repro.core.partition import ContentionStates, uniform_partition
from repro.core.qualitative import ModelForm

from .synthetic import stepped_sample


class TestFitQualitative:
    def test_recovers_per_state_coefficients(self):
        X, y, probing = stepped_sample(true_states=2, n=400, noise=0.0, seed=1)
        states = uniform_partition(0.0, 1.0, 2)
        fit = fit_qualitative(X, y, probing, states, ("x",))
        B = fit.adjusted()
        assert B[0] == pytest.approx([1.0, 0.5], abs=1e-6)
        assert B[1] == pytest.approx([3.0, 1.0], abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_single_state_equals_plain_ols(self):
        X, y, probing = stepped_sample(true_states=1, n=100, seed=2)
        states = ContentionStates(float(probing.min()), float(probing.max()))
        fit = fit_qualitative(X, y, probing, states, ("x",))
        assert fit.num_states == 1
        assert fit.ols.n_parameters == 2

    def test_matching_partition_beats_mismatched(self):
        X, y, probing = stepped_sample(true_states=3, n=600, noise=0.1, seed=3)
        right = fit_qualitative(X, y, probing, uniform_partition(0, 1, 3), ("x",))
        wrong = fit_qualitative(X, y, probing, uniform_partition(0, 1, 1), ("x",))
        assert right.r_squared > wrong.r_squared
        assert right.standard_error < wrong.standard_error

    def test_insufficient_observations_rejected(self):
        X, y, probing = stepped_sample(true_states=2, n=5, seed=4)
        with pytest.raises(ValueError):
            fit_qualitative(X, y, probing, uniform_partition(0, 1, 3), ("x",))

    def test_shape_mismatch_rejected(self):
        X, y, probing = stepped_sample(n=50)
        with pytest.raises(ValueError):
            fit_qualitative(X, y[:-1], probing, uniform_partition(0, 1, 2), ("x",))
        with pytest.raises(ValueError):
            fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x", "extra"))

    def test_state_counts(self):
        X, y, probing = stepped_sample(true_states=2, n=100, seed=5)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
        counts = fit.state_counts()
        assert sum(counts) == 100
        assert min_state_count(fit) == min(counts)
        assert min_state_count([3, 7, 1]) == 1

    def test_parallel_form_fits_fewer_parameters(self):
        X, y, probing = stepped_sample(true_states=2, n=200, seed=6)
        states = uniform_partition(0, 1, 2)
        general = fit_qualitative(X, y, probing, states, ("x",), ModelForm.GENERAL)
        parallel = fit_qualitative(X, y, probing, states, ("x",), ModelForm.PARALLEL)
        assert parallel.ols.n_parameters < general.ols.n_parameters
        # Data has state-specific slopes, so general must fit better.
        assert general.r_squared > parallel.r_squared
