"""Unit tests for query classification."""

import pytest

from repro.core.classification import (
    ALL_CLASSES,
    G1,
    G2,
    G3,
    class_by_label,
    class_for_method,
    classify,
)
from repro.core.variables import JOIN_VARIABLES, UNARY_VARIABLES
from repro.engine.predicate import Comparison
from repro.engine.query import JoinQuery, SelectQuery


class TestRegistry:
    def test_labels_unique(self):
        labels = [c.label for c in ALL_CLASSES]
        assert len(set(labels)) == len(labels)

    def test_paper_classes_present(self):
        assert class_by_label("G1").access_method == "seq_scan"
        assert class_by_label("G2").access_method == "nonclustered_index_scan"
        assert class_by_label("G3").access_method == "hash_join"

    def test_class_for_method(self):
        assert class_for_method("unary", "seq_scan") is G1
        assert class_for_method("join", "hash_join") is G3

    def test_unknown_lookups_rejected(self):
        with pytest.raises(KeyError):
            class_for_method("unary", "warp_drive")
        with pytest.raises(KeyError):
            class_by_label("G99")

    def test_variables_by_family(self):
        assert G1.variables is UNARY_VARIABLES
        assert G3.variables is JOIN_VARIABLES


class TestClassify:
    def test_seq_scan_query_is_g1(self, small_database):
        query = SelectQuery("t1", ("a",), Comparison("b", "<", 50))
        assert classify(small_database, query) is G1

    def test_selective_indexed_query_is_g2(self, small_database):
        query = SelectQuery("t1", ("a",), Comparison("a", "<", 20))
        assert classify(small_database, query) is G2

    def test_clustered_query_is_gc(self, small_database):
        query = SelectQuery("t2", ("b",), Comparison("b", "<", 30))
        assert classify(small_database, query).label == "GC"

    def test_plain_join_is_g3(self, small_database):
        # Join on 'a': t1 has a non-clustered index on a, but the outer is
        # unreduced, so the rule picks hash join.
        query = JoinQuery("t2", "t1", "c", "c")
        assert classify(small_database, query) is G3

    def test_classify_accepts_sql(self, small_database):
        assert classify(small_database, "select a from t1 where b < 50") is G1

    def test_classification_matches_executed_plan(self, small_database):
        queries = [
            SelectQuery("t1", ("a",), Comparison("b", "<", 50)),
            SelectQuery("t1", ("a",), Comparison("a", "<", 20)),
            SelectQuery("t2", ("b",), Comparison("b", "<", 30)),
            JoinQuery("t2", "t1", "c", "c"),
        ]
        for query in queries:
            predicted = classify(small_database, query)
            executed = small_database.execute(query)
            assert executed.plan == predicted.access_method

    def test_unsupported_type_rejected(self, small_database):
        with pytest.raises(TypeError):
            classify(small_database, 42)
