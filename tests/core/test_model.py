"""Unit tests for MultiStateCostModel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.core.qualitative import ModelForm

from .synthetic import stepped_sample


@pytest.fixture
def model():
    X, y, probing = stepped_sample(true_states=2, n=300, noise=0.01, seed=1)
    fit = fit_qualitative(X, y, probing, uniform_partition(0.0, 1.0, 2), ("x",))
    return MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma", note="test")


class TestPrediction:
    def test_predict_uses_probing_cost_for_state(self, model):
        low = model.predict({"x": 10.0}, probing_cost=0.1)
        high = model.predict({"x": 10.0}, probing_cost=0.9)
        # Loaded state: higher intercept and slope.
        assert high > low

    def test_predict_matches_adjusted_coefficients(self, model):
        B = model.per_state_coefficients()
        for state in range(model.num_states):
            manual = B[state, 0] + B[state, 1] * 25.0
            assert model.predict_in_state({"x": 25.0}, state) == pytest.approx(manual)

    def test_predict_close_to_ground_truth(self, model):
        # State 0: y = 1 + 0.5x; state 1: y = 3 + 1.0x.
        assert model.predict({"x": 40.0}, 0.2) == pytest.approx(21.0, rel=0.05)
        assert model.predict({"x": 40.0}, 0.8) == pytest.approx(43.0, rel=0.05)

    def test_missing_variable_rejected(self, model):
        with pytest.raises(KeyError):
            model.predict({"zz": 1.0}, 0.5)

    def test_state_for_clamps(self, model):
        assert model.state_for(-10.0) == 0
        assert model.state_for(10.0) == model.num_states - 1


class TestInspection:
    def test_equation_table_lists_every_state(self, model):
        text = model.equation_table()
        for s in range(model.num_states):
            assert f"s{s}:" in text
        assert "G1" in text

    def test_training_statistics_present(self, model):
        assert model.r_squared > 0.99
        assert model.n_observations == 300
        assert model.is_significant()

    def test_metadata_carried(self, model):
        assert model.metadata["note"] == "test"


class TestSerialization:
    def test_round_trip_preserves_predictions(self, model):
        clone = MultiStateCostModel.from_dict(model.to_dict())
        for probe in (0.1, 0.5, 0.9):
            assert clone.predict({"x": 33.0}, probe) == pytest.approx(
                model.predict({"x": 33.0}, probe)
            )

    def test_round_trip_preserves_structure(self, model):
        clone = MultiStateCostModel.from_dict(model.to_dict())
        assert clone.num_states == model.num_states
        assert clone.variable_names == model.variable_names
        assert clone.form is ModelForm.GENERAL
        assert clone.states.boundaries == model.states.boundaries
        assert clone.algorithm == model.algorithm

    def test_to_dict_is_json_compatible(self, model):
        import json

        json.dumps(model.to_dict())  # must not raise

    def test_coefficients_are_numpy_after_load(self, model):
        clone = MultiStateCostModel.from_dict(model.to_dict())
        assert isinstance(clone.coefficients, np.ndarray)


@settings(max_examples=40, deadline=None)
@given(
    x1=st.floats(0, 1000, allow_nan=False),
    x2=st.floats(0, 1000, allow_nan=False),
    alpha=st.floats(0, 1),
    probe=st.floats(0, 1),
)
def test_property_prediction_linear_within_state(x1, x2, alpha, probe):
    """Within a contention state the model is affine: predicting at a
    convex combination of inputs equals the combination of predictions."""
    X, y, probing = stepped_sample(true_states=2, n=200, noise=0.01, seed=3)
    fit = fit_qualitative(X, y, probing, uniform_partition(0.0, 1.0, 2), ("x",))
    m = MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")
    mid = alpha * x1 + (1 - alpha) * x2
    lhs = m.predict({"x": mid}, probe)
    rhs = alpha * m.predict({"x": x1}, probe) + (1 - alpha) * m.predict(
        {"x": x2}, probe
    )
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-6)
