"""Unit tests for the merging adjustment (Algorithm 3.1 phase 2)."""

import numpy as np
import pytest

from repro.core.fitting import fit_qualitative
from repro.core.merging import (
    max_relative_difference,
    merge_adjustment,
    relative_error,
)
from repro.core.partition import uniform_partition

from .synthetic import stepped_sample


class TestRelativeError:
    def test_zero_for_equal(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_zero_for_both_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_normalized_by_larger_magnitude(self):
        assert relative_error(10.0, 5.0) == pytest.approx(0.5)
        assert relative_error(5.0, 10.0) == pytest.approx(0.5)

    def test_sign_changes_count(self):
        assert relative_error(1.0, -1.0) == pytest.approx(2.0)


class TestMaxRelativeDifference:
    def test_picks_worst_variable(self):
        adjusted = np.array([[1.0, 2.0], [1.0, 4.0]])
        assert max_relative_difference(adjusted, 0) == pytest.approx(0.5)

    def test_index_validated(self):
        adjusted = np.array([[1.0], [2.0]])
        with pytest.raises(IndexError):
            max_relative_difference(adjusted, 1)


class TestMergeAdjustment:
    def test_over_partitioned_states_get_merged(self):
        # 2 true states fitted with 4 uniform states: each true band is
        # split in half, and the halves have identical coefficients.
        X, y, probing = stepped_sample(true_states=2, n=600, noise=0.01, seed=7)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 4), ("x",))
        merged, history = merge_adjustment(fit, X, y, probing, threshold=0.2)
        assert merged.num_states == 2
        assert history  # at least one merge round happened

    def test_distinct_states_not_merged(self):
        X, y, probing = stepped_sample(true_states=3, n=600, noise=0.01, seed=8)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 3), ("x",))
        merged, history = merge_adjustment(fit, X, y, probing, threshold=0.2)
        assert merged.num_states == 3
        assert not history

    def test_merge_preserves_fit_quality(self):
        X, y, probing = stepped_sample(true_states=2, n=600, noise=0.01, seed=9)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 4), ("x",))
        merged, _ = merge_adjustment(fit, X, y, probing, threshold=0.2)
        assert merged.r_squared > 0.99

    def test_single_state_is_noop(self):
        X, y, probing = stepped_sample(true_states=1, n=100, seed=10)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 1), ("x",))
        merged, history = merge_adjustment(fit, X, y, probing)
        assert merged.num_states == 1
        assert not history

    def test_huge_threshold_collapses_everything(self):
        X, y, probing = stepped_sample(true_states=3, n=600, seed=11)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 3), ("x",))
        merged, _ = merge_adjustment(fit, X, y, probing, threshold=1e9)
        assert merged.num_states == 1

    def test_negative_threshold_rejected(self):
        X, y, probing = stepped_sample(n=100, seed=12)
        fit = fit_qualitative(X, y, probing, uniform_partition(0, 1, 2), ("x",))
        with pytest.raises(ValueError):
            merge_adjustment(fit, X, y, probing, threshold=-0.1)
