"""Unit and property tests for contention-state partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    ContentionStates,
    partition_from_intervals,
    uniform_partition,
)


class TestContentionStates:
    def test_single_state(self):
        states = ContentionStates(0.0, 10.0)
        assert states.num_states == 1
        assert states.state_of(5.0) == 0

    def test_boundaries_define_states(self):
        states = ContentionStates(0.0, 10.0, (2.0, 5.0))
        assert states.num_states == 3
        assert states.subranges() == [(0.0, 2.0), (2.0, 5.0), (5.0, 10.0)]

    def test_state_of_interior_points(self):
        states = ContentionStates(0.0, 10.0, (2.0, 5.0))
        assert states.state_of(1.0) == 0
        assert states.state_of(3.0) == 1
        assert states.state_of(7.0) == 2

    def test_boundary_belongs_to_upper_state(self):
        states = ContentionStates(0.0, 10.0, (2.0,))
        assert states.state_of(2.0) == 1

    def test_clamping_outside_range(self):
        states = ContentionStates(1.0, 9.0, (5.0,))
        assert states.state_of(0.0) == 0
        assert states.state_of(100.0) == 1

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            ContentionStates(0.0, 10.0, (5.0, 2.0))

    def test_duplicate_boundaries_rejected(self):
        with pytest.raises(ValueError):
            ContentionStates(0.0, 10.0, (5.0, 5.0))

    def test_boundary_outside_open_range_rejected(self):
        with pytest.raises(ValueError):
            ContentionStates(0.0, 10.0, (0.0,))
        with pytest.raises(ValueError):
            ContentionStates(0.0, 10.0, (10.0,))

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            ContentionStates(5.0, 1.0)

    def test_merge_drops_boundary(self):
        states = ContentionStates(0.0, 10.0, (2.0, 5.0))
        merged = states.merge(0)
        assert merged.boundaries == (5.0,)
        assert merged.num_states == 2

    def test_merge_last_pair(self):
        states = ContentionStates(0.0, 10.0, (2.0, 5.0))
        merged = states.merge(1)
        assert merged.boundaries == (2.0,)

    def test_merge_out_of_range_rejected(self):
        states = ContentionStates(0.0, 10.0, (5.0,))
        with pytest.raises(IndexError):
            states.merge(1)

    def test_assign_vectorized(self):
        states = ContentionStates(0.0, 10.0, (5.0,))
        assert states.assign([1.0, 6.0, 4.9]) == [0, 1, 0]

    def test_describe_lists_all_states(self):
        states = ContentionStates(0.0, 10.0, (5.0,))
        text = states.describe()
        assert "s0" in text and "s1" in text

    def test_subrange_index_checked(self):
        with pytest.raises(IndexError):
            ContentionStates(0.0, 1.0).subrange(1)


class TestUniformPartition:
    def test_equal_widths(self):
        states = uniform_partition(0.0, 12.0, 4)
        widths = [hi - lo for lo, hi in states.subranges()]
        assert widths == pytest.approx([3.0] * 4)

    def test_single_state_no_boundaries(self):
        assert uniform_partition(0.0, 12.0, 1).boundaries == ()

    def test_degenerate_range_single_state(self):
        assert uniform_partition(5.0, 5.0, 4).num_states == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_partition(0.0, 1.0, 0)


class TestPartitionFromIntervals:
    def test_boundaries_at_gap_midpoints(self):
        states = partition_from_intervals([(0.0, 2.0), (4.0, 6.0)])
        assert states.boundaries == (3.0,)
        assert states.cmin == 0.0
        assert states.cmax == 6.0

    def test_explicit_outer_range(self):
        states = partition_from_intervals([(1.0, 2.0), (4.0, 5.0)], cmin=0.0, cmax=10.0)
        assert states.cmin == 0.0
        assert states.cmax == 10.0

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ValueError):
            partition_from_intervals([(0.0, 3.0), (2.0, 5.0)])

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            partition_from_intervals([(3.0, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_from_intervals([])

    def test_unsorted_input_accepted(self):
        states = partition_from_intervals([(4.0, 6.0), (0.0, 2.0)])
        assert states.boundaries == (3.0,)


@settings(max_examples=60, deadline=None)
@given(
    cmin=st.floats(-100, 100, allow_nan=False),
    width=st.floats(0.1, 100),
    m=st.integers(1, 10),
    probes=st.lists(st.floats(-200, 300, allow_nan=False), max_size=30),
)
def test_property_partition_covers_and_is_disjoint(cmin, width, m, probes):
    """Every probing cost maps to exactly one state; subranges tile the range."""
    states = uniform_partition(cmin, cmin + width, m)
    subranges = states.subranges()
    # Tiling: consecutive subranges share exactly their boundary.
    for (_, hi), (lo, _) in zip(subranges, subranges[1:]):
        assert hi == lo
    assert subranges[0][0] == states.cmin
    assert subranges[-1][1] == states.cmax
    for probe in probes:
        s = states.state_of(probe)
        assert 0 <= s < states.num_states
        lo, hi = states.subrange(s)
        clamped = min(max(probe, states.cmin), states.cmax)
        assert lo - 1e-9 <= clamped <= hi + 1e-9
