"""Unit and property tests for 1-D agglomerative clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    Cluster,
    agglomerate,
    cluster_extents,
    merge_small_clusters,
)


class TestAgglomerate:
    def test_obvious_two_clusters(self):
        values = [1.0, 1.1, 1.2, 9.0, 9.1]
        clusters = agglomerate(values, 2)
        assert len(clusters) == 2
        assert clusters[0].count == 3
        assert clusters[1].count == 2
        assert clusters[0].extent == (1.0, 1.2)
        assert clusters[1].extent == (9.0, 9.1)

    def test_three_well_separated_groups(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.normal(0, 0.1, 30), rng.normal(5, 0.1, 30), rng.normal(10, 0.1, 30)]
        )
        clusters = agglomerate(values.tolist(), 3)
        centroids = sorted(c.centroid for c in clusters)
        assert centroids == pytest.approx([0, 5, 10], abs=0.2)

    def test_k_greater_than_n_gives_singletons(self):
        clusters = agglomerate([3.0, 1.0, 2.0], 10)
        assert len(clusters) == 3
        assert all(c.count == 1 for c in clusters)

    def test_k_one_merges_everything(self):
        (cluster,) = agglomerate([1.0, 5.0, 9.0], 1)
        assert cluster.count == 3
        assert cluster.centroid == pytest.approx(5.0)

    def test_sorted_by_centroid(self):
        clusters = agglomerate([9.0, 1.0, 5.0, 1.1, 9.1], 3)
        centroids = [c.centroid for c in clusters]
        assert centroids == sorted(centroids)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            agglomerate([], 2)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            agglomerate([1.0], 0)

    def test_deterministic(self):
        values = list(np.random.default_rng(1).normal(0, 1, 50))
        a = agglomerate(values, 4)
        b = agglomerate(values, 4)
        assert [c.extent for c in a] == [c.extent for c in b]


class TestClusterArithmetic:
    def test_merge_preserves_mass(self):
        a = Cluster(2, 3.0, 1.0, 2.0)
        b = Cluster(3, 30.0, 9.0, 11.0)
        merged = a.merged_with(b)
        assert merged.count == 5
        assert merged.centroid == pytest.approx(33.0 / 5)
        assert merged.extent == (1.0, 11.0)

    def test_extents_listing(self):
        clusters = agglomerate([1.0, 1.1, 5.0], 2)
        assert cluster_extents(clusters) == [(1.0, 1.1), (5.0, 5.0)]


class TestMergeSmallClusters:
    def test_small_cluster_absorbed_by_nearest(self):
        clusters = [
            Cluster(10, 10.0, 0.5, 1.5),
            Cluster(1, 2.0, 2.0, 2.0),
            Cluster(10, 90.0, 8.5, 9.5),
        ]
        merged = merge_small_clusters(clusters, min_count=3)
        assert len(merged) == 2
        assert merged[0].count == 11  # absorbed leftward (closer centroid)

    def test_no_small_clusters_is_identity(self):
        clusters = agglomerate([1.0, 1.1, 9.0, 9.1], 2)
        assert merge_small_clusters(clusters, 2) == clusters

    def test_min_count_one_is_identity(self):
        clusters = agglomerate([1.0, 9.0], 2)
        assert merge_small_clusters(clusters, 1) == clusters

    def test_all_small_collapses_to_one(self):
        clusters = [Cluster(1, float(v), float(v), float(v)) for v in range(5)]
        merged = merge_small_clusters(clusters, min_count=10)
        assert len(merged) == 1
        assert merged[0].count == 5


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=80),
    k=st.integers(1, 8),
)
def test_property_clusters_partition_the_sample(values, k):
    """Counts sum to n; extents are disjoint, ordered, and cover all points."""
    clusters = agglomerate(values, k)
    assert sum(c.count for c in clusters) == len(values)
    extents = cluster_extents(clusters)
    for (lo, hi) in extents:
        assert lo <= hi
    for (_, hi_prev), (lo_next, _) in zip(extents, extents[1:]):
        assert hi_prev <= lo_next
    lo_all = min(lo for lo, _ in extents)
    hi_all = max(hi for _, hi in extents)
    assert lo_all == min(values)
    assert hi_all == max(values)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=60),
    k=st.integers(1, 6),
    floor=st.integers(1, 5),
)
def test_property_merge_small_respects_floor_or_collapses(values, k, floor):
    clusters = merge_small_clusters(agglomerate(values, k), floor)
    assert sum(c.count for c in clusters) == len(values)
    if len(clusters) > 1:
        assert all(c.count >= floor for c in clusters)
