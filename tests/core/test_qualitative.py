"""Unit and property tests for indicator encoding and the Table-2 forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qualitative import (
    ModelForm,
    adjusted_coefficients,
    build_design,
    design_row,
    encode_indicators,
    num_parameters,
    term_names,
)


class TestIndicators:
    def test_one_hot_structure(self):
        Z = encode_indicators([0, 1, 2, 1], 3)
        assert Z.shape == (4, 2)
        assert Z.tolist() == [[0, 0], [1, 0], [0, 1], [1, 0]]

    def test_reference_state_all_zeros(self):
        Z = encode_indicators([0, 0], 4)
        assert np.all(Z == 0)

    def test_single_state_has_no_indicators(self):
        assert encode_indicators([0, 0, 0], 1).shape == (3, 0)

    def test_out_of_range_state_rejected(self):
        with pytest.raises(ValueError):
            encode_indicators([3], 3)
        with pytest.raises(ValueError):
            encode_indicators([-1], 3)

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 8),
        states=st.lists(st.integers(0, 7), min_size=1, max_size=50),
    )
    def test_property_at_most_one_indicator_set(self, m, states):
        states = [s % m for s in states]
        Z = encode_indicators(states, m)
        assert np.all(Z.sum(axis=1) <= 1)
        # The encoding is invertible.
        for row, s in zip(Z, states):
            recovered = 0 if row.sum() == 0 else int(np.argmax(row)) + 1
            assert recovered == s


class TestDesignShapes:
    X = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]])
    STATES = [0, 1, 2, 1]

    @pytest.mark.parametrize(
        "form,cols",
        [
            (ModelForm.COINCIDENT, 3),
            (ModelForm.PARALLEL, 5),
            (ModelForm.CONCURRENT, 7),
            (ModelForm.GENERAL, 9),
        ],
    )
    def test_column_counts(self, form, cols):
        D = build_design(self.X, self.STATES, 3, form)
        assert D.shape == (4, cols)
        assert cols == num_parameters(2, 3, form)
        assert len(term_names(("x1", "x2"), 3, form)) == cols

    def test_m_equals_one_degenerates_to_coincident(self):
        for form in ModelForm:
            D = build_design(self.X, [0, 0, 0, 0], 1, form)
            assert D.shape == (4, 3)

    def test_intercept_column_is_ones(self):
        D = build_design(self.X, self.STATES, 3, ModelForm.GENERAL)
        assert np.all(D[:, 0] == 1.0)

    def test_general_interaction_columns(self):
        D = build_design(self.X, self.STATES, 3, ModelForm.GENERAL)
        names = term_names(("x1", "x2"), 3, ModelForm.GENERAL)
        # x1:s1 column: x1 value where state==1, else 0.
        col = D[:, names.index("x1:s1")]
        assert col.tolist() == [0.0, 3.0, 0.0, 7.0]

    def test_parallel_has_no_slope_interactions(self):
        names = term_names(("x1",), 3, ModelForm.PARALLEL)
        assert "x1:s1" not in names
        assert "b0:s1" in names

    def test_concurrent_has_no_intercept_offsets(self):
        names = term_names(("x1",), 3, ModelForm.CONCURRENT)
        assert "b0:s1" not in names
        assert "x1:s1" in names

    def test_state_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_design(self.X, [0, 1], 2, ModelForm.GENERAL)


class TestAdjustedCoefficients:
    def test_general_round_trip(self):
        # beta: b0, b0:s1, x1, x1:s1 for m=2, n=1.
        beta = np.array([1.0, 0.5, 2.0, -0.25])
        B = adjusted_coefficients(beta, 1, 2, ModelForm.GENERAL)
        assert B[0].tolist() == [1.0, 2.0]
        assert B[1].tolist() == [1.5, 1.75]

    def test_coincident_same_for_all_states(self):
        beta = np.array([1.0, 2.0])
        B = adjusted_coefficients(beta, 1, 1, ModelForm.COINCIDENT)
        assert B.shape == (1, 2)

    def test_parallel_only_intercept_varies(self):
        beta = np.array([1.0, 0.5, 2.0])  # b0, b0:s1, x1
        B = adjusted_coefficients(beta, 1, 2, ModelForm.PARALLEL)
        assert B[:, 0].tolist() == [1.0, 1.5]
        assert B[:, 1].tolist() == [2.0, 2.0]

    def test_concurrent_only_slopes_vary(self):
        beta = np.array([1.0, 2.0, 0.5])  # b0, x1, x1:s1
        B = adjusted_coefficients(beta, 1, 2, ModelForm.CONCURRENT)
        assert B[:, 0].tolist() == [1.0, 1.0]
        assert B[:, 1].tolist() == [2.0, 2.5]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            adjusted_coefficients(np.ones(3), 1, 2, ModelForm.GENERAL)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 4),
        m=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    def test_property_prediction_via_adjusted_equals_design_dot(self, n, m, seed):
        """B'[s] . (1, x) must equal the design-row dot product."""
        rng = np.random.default_rng(seed)
        beta = rng.normal(0, 1, num_parameters(n, m, ModelForm.GENERAL))
        B = adjusted_coefficients(beta, n, m, ModelForm.GENERAL)
        x = rng.normal(0, 1, n)
        for s in range(m):
            via_design = float(design_row(x, s, m, ModelForm.GENERAL) @ beta)
            via_adjusted = float(B[s, 0] + B[s, 1:] @ x)
            assert via_design == pytest.approx(via_adjusted, abs=1e-9)


class TestDesignRow:
    def test_matches_matrix_row(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        D = build_design(X, [0, 1], 2, ModelForm.GENERAL)
        row = design_row([3.0, 4.0], 1, 2, ModelForm.GENERAL)
        assert row == pytest.approx(D[1])
