"""Unit tests for the end-to-end cost-model builder."""

import pytest

from repro.core.builder import BuilderConfig, CostModelBuilder
from repro.core.classification import G1
from repro.core.sampling import recommended_sample_size


class TestSampleSizing:
    def test_sample_size_follows_eq4(self, session_site):
        builder = CostModelBuilder(session_site.database)
        assert builder.sample_size(G1) == recommended_sample_size(
            G1.variables,
            builder.config.sizing_states,
            builder.config.secondary_allowance,
        )


class TestBuildPipeline:
    def test_build_produces_model_and_observations(self, session_g1_build):
        _, outcome = session_g1_build
        assert outcome.model.class_label == "G1"
        assert outcome.model.family == "unary"
        assert len(outcome.observations) == 120
        assert outcome.determination is not None

    def test_dynamic_environment_yields_multiple_states(self, session_g1_build):
        _, outcome = session_g1_build
        assert outcome.model.num_states >= 2

    def test_model_is_statistically_significant(self, session_g1_build):
        _, outcome = session_g1_build
        assert outcome.model.is_significant(alpha=0.01)
        assert outcome.model.r_squared > 0.8

    def test_selected_variables_are_candidates(self, session_g1_build):
        _, outcome = session_g1_build
        assert set(outcome.model.variable_names) <= set(G1.variables.all_names)
        assert len(outcome.model.variable_names) >= 1

    def test_metadata_records_provenance(self, session_g1_build):
        _, outcome = session_g1_build
        meta = outcome.model.metadata
        assert meta["database"] == "session_site"
        assert "probe" in meta
        assert isinstance(meta["selection_steps"], list)
        assert isinstance(meta["state_history"], list)
        assert meta["state_history"][0]["num_states"] == 1

    def test_static_algorithm_gives_single_state(self, session_g1_build):
        builder, outcome = session_g1_build
        static = builder.build_from_observations(
            outcome.observations, G1, algorithm="static"
        )
        assert static.model.num_states == 1
        assert static.determination is None

    def test_icma_algorithm_runs(self, session_g1_build):
        builder, outcome = session_g1_build
        icma = builder.build_from_observations(
            outcome.observations, G1, algorithm="icma"
        )
        assert icma.model.algorithm == "icma"
        assert icma.model.num_states >= 1

    def test_unknown_algorithm_rejected(self, session_g1_build):
        builder, outcome = session_g1_build
        with pytest.raises(ValueError):
            builder.build_from_observations(outcome.observations, G1, "magic")

    def test_observations_must_carry_class_variables(self, session_g1_build):
        builder, outcome = session_g1_build
        # G1 observations lack join variables -> building a join-class
        # model from them must fail loudly.
        from repro.core.classification import G3

        with pytest.raises(ValueError):
            builder.build_from_observations(outcome.observations, G3)

    def test_custom_config_flows_through(self, session_site):
        from repro.core.iupma import StatesConfig

        config = BuilderConfig(states=StatesConfig(max_states=2))
        builder = CostModelBuilder(session_site.database, config=config)
        queries = session_site.generator.queries_for(G1, 60)
        outcome = builder.build(G1, queries)
        assert outcome.model.num_states <= 2
