"""Unit tests for probing queries and eq. (2) estimation."""

import pytest

from repro.core.probing import (
    ProbingCostEstimator,
    ProbingQuery,
    default_probing_query,
)
from repro.engine.database import LocalDatabase
from repro.engine.query import SelectQuery
from repro.env.contention import ConstantContention
from repro.env.environment import Environment
from repro.env.loadbuilder import LoadBuilder
from repro.env.monitor import EnvironmentMonitor


class TestProbingQuery:
    def test_observe_returns_elapsed(self, dynamic_database):
        probe = ProbingQuery(dynamic_database, SelectQuery("t1", ("a",)))
        assert probe.observe() > 0

    def test_cost_tracks_contention(self, small_database):
        probe = ProbingQuery(small_database, SelectQuery("t1", ("a",)))
        loads = LoadBuilder(small_database.environment)
        loads.constant(0.0)
        idle_cost = probe.observe()
        loads.constant(0.9)
        loaded_cost = probe.observe()
        assert loaded_cost > 3 * idle_cost

    def test_accepts_sql_text(self, small_database):
        probe = ProbingQuery(small_database, "select a from t1 where a < 100")
        assert probe.observe() > 0

    def test_describe_names_site_and_query(self, small_database):
        probe = ProbingQuery(small_database, SelectQuery("t1", ("a",)))
        assert "unit_db" in probe.describe()
        assert "t1" in probe.describe()


class TestDefaultProbe:
    def test_targets_smallest_table(self, small_database):
        probe = default_probing_query(small_database)
        assert probe.query.table == "t2"  # 400 rows < 600

    def test_runs(self, small_database):
        assert default_probing_query(small_database).observe() > 0

    def test_empty_database_rejected(self):
        db = LocalDatabase("empty")
        with pytest.raises(ValueError):
            default_probing_query(db)


class TestProbingCostEstimator:
    def calibrated(self, database, samples=50):
        probe = default_probing_query(database)
        monitor = EnvironmentMonitor(database.environment)
        estimator = ProbingCostEstimator()
        estimator.calibrate(probe, monitor, samples=samples, interval_seconds=45.0)
        return estimator, probe, monitor

    def test_calibration_fits_contention_signal(self, dynamic_database):
        estimator, _, _ = self.calibrated(dynamic_database)
        assert estimator.is_calibrated
        assert estimator.fit.r_squared > 0.7

    def test_significant_parameters_subset_of_candidates(self, dynamic_database):
        estimator, _, _ = self.calibrated(dynamic_database)
        assert set(estimator.selected_parameters) <= set(estimator.parameters)
        assert len(estimator.selected_parameters) >= 1

    def test_estimates_track_observations(self, dynamic_database):
        estimator, probe, monitor = self.calibrated(dynamic_database, samples=60)
        errors = []
        for _ in range(10):
            estimated = estimator.estimate(monitor.statistics())
            observed = probe.observe()
            errors.append(abs(estimated - observed) / max(observed, 1e-9))
            dynamic_database.environment.advance(60.0)
        assert sum(errors) / len(errors) < 0.8

    def test_estimate_monotone_in_contention(self, small_database):
        # Calibrate under a sweep of constant loads, then compare two
        # snapshots at known levels.
        estimator, probe, monitor = None, None, None
        env = small_database.environment
        loads = LoadBuilder(env)
        probe = default_probing_query(small_database)
        monitor = EnvironmentMonitor(env)
        snapshots, costs = [], []
        for level in [i / 19 for i in range(20)]:
            loads.constant(level)
            snapshots.append(monitor.statistics())
            costs.append(probe.observe())
        estimator = ProbingCostEstimator()
        estimator.fit_pairs(snapshots, costs)
        loads.constant(0.1)
        low = estimator.estimate(monitor.statistics())
        loads.constant(0.9)
        high = estimator.estimate(monitor.statistics())
        assert high > low

    def test_uncalibrated_estimate_rejected(self, small_database):
        estimator = ProbingCostEstimator()
        env = Environment(trace=ConstantContention(0.5))
        with pytest.raises(RuntimeError):
            estimator.estimate(env.snapshot())
        with pytest.raises(RuntimeError):
            estimator.selected_parameters

    def test_too_few_calibration_samples_rejected(self, dynamic_database):
        probe = default_probing_query(dynamic_database)
        monitor = EnvironmentMonitor(dynamic_database.environment)
        with pytest.raises(ValueError):
            ProbingCostEstimator().calibrate(probe, monitor, samples=2)

    def test_mismatched_pairs_rejected(self, small_database):
        estimator = ProbingCostEstimator()
        snap = small_database.environment.snapshot()
        with pytest.raises(ValueError):
            estimator.fit_pairs([snap], [1.0, 2.0])
