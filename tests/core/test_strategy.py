"""The pluggable cost-model strategy layer.

The load-bearing guarantee is at the top: building through the default
OLS strategy is byte-identical to the direct ``fit_qualitative`` path
the repo shipped before the strategy refactor.
"""

import numpy as np
import pytest

from repro.core.classification import G1
from repro.core.fitting import fit_qualitative
from repro.core.model import MultiStateCostModel
from repro.core.partition import uniform_partition
from repro.core.strategy import (
    DEFAULT_STRATEGY,
    MODEL_FORM_KEY,
    STRATEGY_NAMES,
    STRATEGY_PARAMS_KEY,
    OLSStrategy,
    OnlineSample,
    RLSStrategy,
    SGDStrategy,
    model_form,
    resolve_strategy,
    strategy_for,
)

from .synthetic import stepped_sample


def make_fit(true_states=2, n=120, seed=3):
    X, y, probing = stepped_sample(true_states=true_states, n=n, seed=seed)
    return fit_qualitative(
        X, y, probing, uniform_partition(0.0, 1.0, true_states), ("x",)
    )


def finalize(strategy_name, **kwargs):
    fit = make_fit(**kwargs)
    model = MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")
    return resolve_strategy(strategy_name).finalize(model, fit), fit


class TestDefaultPathByteIdentity:
    """The OLS default must not move a single byte post-refactor."""

    def test_finalize_is_identity_for_ols(self):
        fit = make_fit()
        raw = MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")
        finalized = OLSStrategy().finalize(
            MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma"), fit
        )
        assert finalized.to_dict() == raw.to_dict()
        assert MODEL_FORM_KEY not in finalized.metadata
        assert STRATEGY_PARAMS_KEY not in finalized.metadata

    def test_default_form_name(self):
        model, _ = finalize(DEFAULT_STRATEGY)
        assert model_form(model) == "mlr.ols"
        assert isinstance(strategy_for(model), OLSStrategy)

    def test_builder_explicit_ols_equals_default(self, session_g1_build):
        """An explicit ``strategy="mlr.ols"`` rebuild is the identity:
        the pre-refactor default path and the strategy path agree byte
        for byte on the exported artifact."""
        builder, outcome = session_g1_build
        default = builder.build_from_observations(outcome.observations, G1)
        explicit = builder.build_from_observations(
            outcome.observations, G1, strategy="mlr.ols"
        )
        assert default.model.to_dict() == explicit.model.to_dict()
        assert MODEL_FORM_KEY not in default.model.metadata


class TestResolve:
    def test_known_names(self):
        assert set(STRATEGY_NAMES) == {"mlr.ols", "mlr.rls", "mlr.sgd"}
        for name in STRATEGY_NAMES:
            assert resolve_strategy(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve_strategy("mlr.kalman")

    def test_params_forwarded(self):
        strategy = resolve_strategy("mlr.rls", {"forgetting": 0.9})
        assert isinstance(strategy, RLSStrategy)
        assert strategy.forgetting == pytest.approx(0.9)


class TestOnlineForms:
    def test_finalize_stamps_metadata(self):
        model, _ = finalize("mlr.rls")
        assert model.metadata[MODEL_FORM_KEY] == "mlr.rls"
        recovered = strategy_for(model)
        assert isinstance(recovered, RLSStrategy)
        assert recovered.params() == RLSStrategy().params()

    def test_sgd_round_trips_params(self):
        fit = make_fit()
        model = MultiStateCostModel.from_fit(fit, "G1", "unary", "iupma")
        model = SGDStrategy(learning_rate=0.25).finalize(model, fit)
        recovered = strategy_for(model)
        assert isinstance(recovered, SGDStrategy)
        assert recovered.learning_rate == pytest.approx(0.25)

    def test_supports_online_update_flags(self):
        assert not OLSStrategy().supports_online_update
        assert RLSStrategy().supports_online_update
        assert SGDStrategy().supports_online_update

    @pytest.mark.parametrize("name", ["mlr.rls", "mlr.sgd"])
    def test_online_calm_fit_tracks_ols(self, name):
        ols, _ = finalize(DEFAULT_STRATEGY)
        online, _ = finalize(name)
        # Same calm data: online forms land near the batch solution.
        np.testing.assert_allclose(
            online.coefficients, ols.coefficients, rtol=0.15, atol=0.05
        )

    def test_builder_strategy_override(self, session_g1_build):
        builder, outcome = session_g1_build
        built = builder.build_from_observations(
            outcome.observations, G1, strategy="mlr.rls"
        )
        assert model_form(built.model) == "mlr.rls"
        assert built.model.metadata[STRATEGY_PARAMS_KEY] == RLSStrategy().params()


class TestOnlineUpdate:
    def sample(self, model, actual, state=0):
        return OnlineSample(
            values={name: 0.4 for name in model.variable_names},
            state=state,
            actual=actual,
        )

    def test_ols_has_no_updater(self):
        model, _ = finalize(DEFAULT_STRATEGY)
        strategy = strategy_for(model)
        updater = strategy.make_updater(model)
        assert updater is None
        assert strategy.update(model, self.sample(model, 10.0), updater) is None

    def test_rls_update_mutates_in_place(self):
        model, _ = finalize("mlr.rls")
        strategy = strategy_for(model)
        updater = strategy.make_updater(model)
        before = model.coefficients.copy()
        error = strategy.update(model, self.sample(model, 500.0), updater)
        assert error is not None and abs(error) > 0.0
        assert not np.array_equal(model.coefficients, before)

    def test_updates_converge_toward_actual(self):
        model, _ = finalize("mlr.rls")
        strategy = strategy_for(model)
        updater = strategy.make_updater(model)
        errors = [
            abs(strategy.update(model, self.sample(model, 42.0), updater))
            for _ in range(20)
        ]
        assert errors[-1] < errors[0]
        assert errors[-1] < 1.0

    def test_missing_variable_is_a_noop(self):
        model, _ = finalize("mlr.sgd")
        strategy = strategy_for(model)
        updater = strategy.make_updater(model)
        before = model.coefficients.copy()
        bad = OnlineSample(values={"nope": 1.0}, state=0, actual=5.0)
        assert strategy.update(model, bad, updater) is None
        np.testing.assert_array_equal(model.coefficients, before)

    def test_out_of_range_state_is_clamped(self):
        model, _ = finalize("mlr.rls")
        strategy = strategy_for(model)
        updater = strategy.make_updater(model)
        assert strategy.update(model, self.sample(model, 42.0, state=99), updater) is not None
