"""The parallel experiment runner: task enumeration, pooling, metrics."""

import pytest

from repro import obs
from repro.core.classification import G1
from repro.engine.profiles import ORACLE_LIKE
from repro.experiments import harness
from repro.experiments.cache import DiskCache
from repro.experiments.config import tiny
from repro.experiments.runner import (
    ExperimentTask,
    TASK_SECONDS_METRIC,
    enumerate_class_tasks,
    run_experiments,
    task_seed,
)
from repro.experiments.table4 import render_table4, run_table4


@pytest.fixture
def fresh_harness():
    """Isolated registry + memo + no disk cache for each test."""
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_disk = harness.set_disk_cache(None)
    harness.clear_cache()
    try:
        yield
    finally:
        harness.clear_cache()
        harness.set_disk_cache(previous_disk)
        obs.set_registry(previous_registry)


class TestTasks:
    def test_enumerates_all_table_figure_tasks(self):
        tasks = enumerate_class_tasks()
        assert len(tasks) == 6
        assert len({t.key for t in tasks}) == 6
        assert ExperimentTask("db2_like", "G1") in tasks
        assert ExperimentTask("oracle_like", "G3") in tasks

    def test_resolve_roundtrip_and_unknown_names(self):
        profile, query_class = ExperimentTask("oracle_like", "G1").resolve()
        assert profile is ORACLE_LIKE and query_class is G1
        with pytest.raises(KeyError):
            ExperimentTask("sybase_like", "G1").resolve()
        with pytest.raises(KeyError):
            ExperimentTask("oracle_like", "G99").resolve()

    def test_task_seed_is_stable_key_function(self):
        config = tiny()
        task = ExperimentTask("oracle_like", "G1")
        assert task_seed(config, task) == task_seed(config, task)
        assert task_seed(config, task) != task_seed(
            config, ExperimentTask("db2_like", "G1")
        )
        # The runner seed IS the seed the harness gives the task's sites.
        assert task_seed(config, task) == harness.stable_seed(
            config.seed, "oracle_like"
        )


@pytest.mark.slow
class TestPool:
    def test_pool_matches_serial_and_aggregates_metrics(self, fresh_harness, tmp_path):
        config = tiny()
        serial_report = run_experiments(config, jobs=1)
        serial_table = render_table4(run_table4(config))
        assert serial_report.computed == 6

        harness.clear_cache()
        harness.set_disk_cache(DiskCache(tmp_path))
        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        report = run_experiments(config, jobs=2)
        assert report.computed == 6 and report.from_cache == 0
        assert render_table4(run_table4(config)) == serial_table

        # Worker obs counters were merged into the parent registry...
        assert registry.counter_value("experiments.cache.misses") == 6
        assert registry.counter_value("experiments.disk_cache.writes") == 6
        # ...and per-task wall clock landed in the parent histogram.
        snapshot = registry.snapshot()[TASK_SECONDS_METRIC]
        assert snapshot["count"] == 6
        assert "computed=6" in report.summary()

        # Warm rerun through the pool: all six tasks come from disk.
        harness.clear_cache()
        warm = run_experiments(config, jobs=2)
        assert warm.computed == 0
        assert all(t.source == "disk" for t in warm.tasks)
        assert render_table4(run_table4(config)) == serial_table

    def test_buffer_pool_is_deterministic_across_jobs(self, fresh_harness):
        """With the simulated memory hierarchy on, jobs=2 must reproduce
        jobs=1 byte for byte — the pool is a pure function of each
        task's access sequence, never of worker scheduling."""
        import dataclasses
        import json

        config = dataclasses.replace(tiny(), buffer_pages=128)
        tasks = [
            ExperimentTask("oracle_like", "G1"),
            ExperimentTask("db2_like", "G1"),
        ]

        def fingerprints():
            payloads = []
            for task in tasks:
                profile, query_class = task.resolve()
                result = harness.cached_class_experiment(
                    profile, query_class, config
                )
                payloads.append(
                    json.dumps(
                        {
                            "model": result.multi.model.to_dict(),
                            "costs": [o.cost for o in result.multi.observations],
                            "hit_states": [
                                o.metadata.get("buffer_hit_state")
                                for o in result.multi.observations
                            ],
                        },
                        sort_keys=True,
                    )
                )
            return payloads

        serial = run_experiments(config, tasks=tasks, jobs=1)
        assert serial.computed == 2
        serial_payloads = fingerprints()
        # The pooled run really exercised the buffer pool.
        assert any("buffer_hit_state" in p for p in serial_payloads)

        harness.clear_cache()
        parallel = run_experiments(config, tasks=tasks, jobs=2)
        assert parallel.computed == 2
        assert fingerprints() == serial_payloads

    def test_serial_runner_reports_memory_hits(self, fresh_harness):
        config = tiny()
        tasks = [ExperimentTask("oracle_like", "G1")]
        first = run_experiments(config, tasks=tasks, jobs=1)
        assert [t.source for t in first.tasks] == ["computed"]
        second = run_experiments(config, tasks=tasks, jobs=1)
        assert [t.source for t in second.tasks] == ["memory"]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_experiments(tiny(), jobs=0)
