"""The model-form race experiment: smoke ladder + referee scoring."""

import json

import pytest

from repro.experiments.config import tiny
from repro.experiments.model_race import (
    RACE_STRATEGIES,
    model_race_payload,
    render_model_race,
    render_race_timings,
    run_model_race,
)
from repro.obs.quality import DriftDetector, DriftPolicy


@pytest.fixture(scope="module")
def race_result():
    return run_model_race(
        tiny(), calm_rounds=3, shifted_rounds=5, queries_per_round=2
    )


class TestRaceLadder:
    def test_every_strategy_completes_cleanly(self, race_result):
        assert [run.strategy for run in race_result.runs] == list(RACE_STRATEGIES)
        expected = (3 + 5) * 2
        for run in race_result.runs:
            assert run.failed == 0
            assert run.requests == run.completed == expected
            assert len(run.rounds) == 8
            assert [r.phase for r in run.rounds] == ["calm"] * 3 + ["shifted"] * 5

    def test_scores_are_attached(self, race_result):
        for run in race_result.runs:
            assert run.score is not None
            assert run.score.shift_round == 3

    def test_online_forms_update_in_place(self, race_result):
        for run in race_result.runs:
            if run.strategy == "mlr.ols":
                assert run.online_updates == 0
            else:
                # Every served query on the modeled classes folds back in.
                assert run.online_updates > 0
                assert run.rebuilds == 0

    def test_render_is_deterministic_text(self, race_result):
        text = render_model_race(race_result)
        assert "Model-form race" in text
        for name in RACE_STRATEGIES:
            assert name in text
        assert render_model_race(race_result) == text
        assert "wall" in render_race_timings(race_result)

    def test_payload_schema(self, race_result):
        payload = model_race_payload(race_result)
        json.dumps(payload)  # JSON-compatible end to end
        assert payload["bench"] == "model_race"
        assert payload["schema_version"] == 1
        assert payload["floor_pct"] == 50.0
        assert set(payload) >= {
            "calm_rounds",
            "shifted_rounds",
            "queries_per_round",
            "ols_queries_to_recover",
            "online_winners",
            "strategies",
        }
        by_name = {s["strategy"]: s for s in payload["strategies"]}
        assert set(by_name) == set(RACE_STRATEGIES)
        for entry in by_name.values():
            assert entry["failed"] == 0
            assert {"phase", "good_pct", "samples", "queries"} <= set(
                entry["rounds"][0]
            )
            assert "queries_to_recover" in entry["score"]


class TestRecoveryReferee:
    def detector(self):
        return DriftDetector(DriftPolicy(good_band_floor_pct=50.0))

    def entry(self, phase, good_pct, samples=6, queries=3):
        return {
            "phase": phase,
            "good_pct": good_pct,
            "samples": samples,
            "queries": queries,
        }

    def test_dip_and_recovery_counts_served_queries(self):
        timeline = [
            self.entry("calm", 90.0),
            self.entry("calm", 85.0),
            self.entry("shifted", 70.0),
            self.entry("shifted", 30.0),
            self.entry("shifted", 40.0),
            self.entry("shifted", 80.0),
        ]
        score = self.detector().score_recovery(timeline)
        assert score.shift_round == 2
        assert score.degraded_round == 3
        assert score.recovered_round == 5
        assert score.calm_good_pct == pytest.approx(87.5)
        # Served queries from the shift through the recovery round.
        assert score.queries_to_recover == 4 * 3

    def test_never_dipping_scores_zero_queries(self):
        timeline = [
            self.entry("calm", 90.0),
            self.entry("shifted", 75.0),
            self.entry("shifted", 80.0),
        ]
        score = self.detector().score_recovery(timeline)
        assert score.degraded_round is None
        assert score.recovered_round == 1
        assert score.queries_to_recover == 0

    def test_never_recovering_is_open_ended(self):
        timeline = [
            self.entry("calm", 90.0),
            self.entry("shifted", 20.0),
            self.entry("shifted", 10.0),
        ]
        score = self.detector().score_recovery(timeline)
        assert score.degraded_round == 1
        assert score.recovered_round is None
        assert score.queries_to_recover is None

    def test_empty_sample_rounds_are_skipped(self):
        timeline = [
            self.entry("calm", 90.0),
            self.entry("shifted", 0.0, samples=0),
            self.entry("shifted", 20.0),
            self.entry("shifted", 90.0),
        ]
        score = self.detector().score_recovery(timeline)
        assert score.degraded_round == 2
        assert score.recovered_round == 3
