"""Unit tests for report formatting."""

from repro.experiments.report import ascii_histogram, format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(("name", "value"), [("a", 1.5), ("bb", 20)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(("h",), [("x",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(("v",), [(0.000123,), (1234567.0,), (0.5,)])
        assert "0.000123" in text
        assert "1.23e+06" in text

    def test_bool_rendering(self):
        text = format_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            [1.0, 2.0],
            {"observed": [10.0, 20.0], "estimated": [11.0, 19.0]},
            x_label="n",
        )
        assert "observed" in text and "estimated" in text
        assert len(text.splitlines()) == 4

    def test_max_rows_thins_output(self):
        x = list(range(100))
        series = {"y": [float(v) for v in x]}
        text = format_series(x, series, max_rows=10)
        assert len(text.splitlines()) <= 2 + 26  # header + separator + thinned rows


class TestHistogram:
    def test_bar_lengths_proportional(self):
        values = [1.0] * 90 + [9.0] * 10
        text = ascii_histogram(values, bins=2, width=40)
        lines = text.splitlines()
        assert lines[0].count("#") == 40
        assert 0 < lines[-1].count("#") < 10

    def test_counts_shown(self):
        text = ascii_histogram([1.0, 1.0, 2.0], bins=2)
        assert "2" in text and "1" in text
