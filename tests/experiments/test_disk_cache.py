"""The content-addressed disk cache and the exact JSON+npz codec."""

import dataclasses
import json

import pytest

from repro import obs
from repro.core.classification import G1
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.experiments import harness
from repro.experiments.cache import (
    DiskCache,
    code_version_salt,
    default_cache_dir,
    task_digest,
)
from repro.experiments.config import tiny
from repro.experiments.serialize import (
    PayloadError,
    result_from_files,
    result_to_files,
)
from repro.experiments.table5 import render_table5, run_table5


@pytest.fixture(scope="module")
def result():
    return harness.run_class_experiment(ORACLE_LIKE, G1, tiny())


class TestDigest:
    def test_digest_depends_on_every_input(self):
        config = tiny()
        base = task_digest("oracle_like", "G1", config)
        assert base == task_digest("oracle_like", "G1", config)
        assert base != task_digest("db2_like", "G1", config)
        assert base != task_digest("oracle_like", "G2", config)
        assert base != task_digest("oracle_like", "G1", config.with_seed(99))
        assert base != task_digest("oracle_like", "G1", config, algorithm="icma")
        assert base != task_digest(
            "oracle_like", "G1", config, environment_kind="static"
        )

    def test_digest_covers_builder_tunables(self):
        config = tiny()
        states = dataclasses.replace(config.builder.states, max_states=3)
        builder = dataclasses.replace(config.builder, states=states)
        changed = dataclasses.replace(config, builder=builder)
        assert task_digest("oracle_like", "G1", config) != task_digest(
            "oracle_like", "G1", changed
        )

    def test_code_salt_is_stable_within_process(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        assert default_cache_dir() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-experiments"


class TestCodec:
    def test_roundtrip_is_exact(self, result, tmp_path):
        result_to_files(result, tmp_path / "entry")
        restored = result_from_files(tmp_path / "entry")
        # Byte-identical rendering is the warm-cache contract.
        for name in result.models:
            assert (
                restored.models[name].equation_table()
                == result.models[name].equation_table()
            )
        assert restored.reports == result.reports
        assert restored.query_class == result.query_class
        assert [dataclasses.astuple(p) for p in restored.test_points] == [
            dataclasses.astuple(p) for p in result.test_points
        ]
        # Observations and timings survive; provenance deliberately not.
        assert len(restored.multi.observations) == len(result.multi.observations)
        assert restored.multi.observations[3].values == result.multi.observations[3].values
        assert restored.multi.timings == result.multi.timings
        assert restored.multi.selection is None
        assert restored.multi.determination is None

    def test_version_mismatch_rejected(self, result, tmp_path):
        result_to_files(result, tmp_path / "entry")
        manifest_path = tmp_path / "entry" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PayloadError):
            result_from_files(tmp_path / "entry")

    def test_garbage_entry_rejected(self, tmp_path):
        (tmp_path / "entry").mkdir()
        (tmp_path / "entry" / "manifest.json").write_text("not json{")
        with pytest.raises(PayloadError):
            result_from_files(tmp_path / "entry")


class TestDiskCache:
    def test_put_get_clear(self, result, tmp_path):
        cache = DiskCache(tmp_path)
        digest = task_digest("oracle_like", "G1", tiny())
        assert cache.get(digest) is None
        cache.put(digest, result)
        assert len(cache) == 1
        restored = cache.get(digest)
        assert restored is not None
        assert restored.report_multi == result.report_multi
        assert cache.stats() == (1, 1)
        assert cache.writes == 1
        # Idempotent put: entry already present, no second write.
        cache.put(digest, result)
        assert cache.writes == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss_and_gets_dropped(self, result, tmp_path):
        cache = DiskCache(tmp_path)
        digest = task_digest("oracle_like", "G1", tiny())
        cache.put(digest, result)
        entry = cache._entry_dir(digest)
        (entry / "arrays.npz").write_bytes(b"ruined")
        assert cache.get(digest) is None
        assert not entry.exists()

    def test_stats_survive_obs_registry_reset(self, result, tmp_path):
        """The regression the counters-on-the-object fix exists for:
        resetting the obs registry must not zero cache accounting."""
        cache = DiskCache(tmp_path)
        previous_disk = harness.set_disk_cache(cache)
        previous_registry = obs.set_registry(obs.MetricsRegistry())
        harness.clear_cache()
        try:
            config = tiny()
            harness.cached_class_experiment(ORACLE_LIKE, G1, config)  # miss
            obs.set_registry(obs.MetricsRegistry())  # wipe global counters
            harness.cached_class_experiment(ORACLE_LIKE, G1, config)  # memory hit
            harness.clear_cache()  # memo gone; counters reset with it
            harness.cached_class_experiment(ORACLE_LIKE, G1, config)  # disk hit
            assert harness.cache_stats() == (1, 0)
            assert harness.get_cache().disk_hits == 1
            assert "1 from disk" in harness.cache_summary()
            # The old implementation read the obs counters instead; after
            # the registry reset those say (2, 0) — not what happened
            # since the memo was cleared.
            registry = obs.get_registry()
            assert registry.counter_value("experiments.cache.hits") == 2.0
            assert registry.counter_value("experiments.cache.misses") == 0.0
        finally:
            harness.clear_cache()
            harness.set_disk_cache(previous_disk)
            obs.set_registry(previous_registry)


@pytest.mark.slow
class TestWarmRenderEquivalence:
    def test_table5_from_disk_matches_live(self, tmp_path):
        """Render Table 5 live, then again purely from the disk cache."""
        config = tiny()
        previous_disk = harness.set_disk_cache(DiskCache(tmp_path))
        harness.clear_cache()
        try:
            live = render_table5(run_table5(config, profiles=(DB2_LIKE,)))
            harness.clear_cache()
            warm = render_table5(run_table5(config, profiles=(DB2_LIKE,)))
            assert warm == live
            assert harness.cache_stats()[1] == 0  # zero recomputations
        finally:
            harness.clear_cache()
            harness.set_disk_cache(previous_disk)
