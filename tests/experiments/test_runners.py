"""Smoke tests for the experiment runners (small configurations).

The benchmarks run the full quick-preset experiments; here we only check
that each runner produces structurally correct output and the headline
shape holds, using deliberately tiny sample sizes.
"""

import pytest

from repro.core.classification import G1
from repro.engine.profiles import ORACLE_LIKE
from repro.experiments.config import tiny
from repro.experiments.figure1 import run_figure1
from repro.experiments.figures4_9 import FIGURE_LAYOUT, run_figure, tracking_error
from repro.experiments.harness import run_class_experiment
from repro.experiments.model_forms import run_model_forms
from repro.experiments.states_ablation import run_states_ablation
from repro.experiments.table5 import render_table5, run_table5, shape_violations
from repro.experiments.table6 import run_table6

TINY = tiny(seed=13)


class TestFigure1:
    def test_monotone_superlinear_sweep(self):
        result = run_figure1(TINY, num_points=5, repeats=2)
        assert result.costs == sorted(result.costs)
        assert result.swing > 10.0
        assert result.process_counts[0] == 50
        assert result.process_counts[-1] == 130


class TestClassExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_class_experiment(ORACLE_LIKE, G1, TINY)

    def test_three_models_produced(self, result):
        assert result.multi.model.num_states >= 2
        assert result.one_state.model.num_states == 1
        assert result.static.model.num_states == 1

    def test_multi_beats_one_state(self, result):
        assert result.report_multi.pct_good > result.report_one_state.pct_good

    def test_static_collapses_in_dynamic_env(self, result):
        assert result.report_static.pct_good < 40.0

    def test_points_sorted_by_result_size(self, result):
        xs = [p.result_tuples for p in result.test_points]
        assert xs == sorted(xs)
        assert len(result.test_points) == TINY.test_count


class TestStatesAblation:
    def test_r2_saturating_curve(self):
        result = run_states_ablation(TINY, max_states=5)
        r2 = result.r_squared_series
        assert len(r2) == 5
        assert r2[-1] > r2[0] + 0.1
        # Early gains dominate late gains (saturation).
        assert (r2[1] - r2[0]) > (r2[4] - r2[3])


class TestModelForms:
    def test_general_form_wins(self):
        result = run_model_forms(TINY)
        from repro.core.qualitative import ModelForm

        general = result.result_for(ModelForm.GENERAL)
        coincident = result.result_for(ModelForm.COINCIDENT)
        assert general.r_squared > coincident.r_squared
        assert general.standard_error < coincident.standard_error


class TestFigureRunners:
    def test_figure_layout_covers_4_to_9(self):
        assert sorted(FIGURE_LAYOUT) == [4, 5, 6, 7, 8, 9]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure(3, TINY)

    def test_tracking_error_zero_for_perfect(self):
        assert tracking_error([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert tracking_error([1.0, 2.0], [2.0, 4.0]) > 0.0


class TestTable5:
    def test_rows_and_shape(self):
        rows = run_table5(TINY, profiles=(ORACLE_LIKE,), classes=(G1,))
        assert len(rows) == 3  # three model types
        assert not shape_violations(rows)
        assert "Table 5" in render_table5(rows)


class TestTable6:
    def test_icma_at_least_as_good(self):
        result = run_table6(TINY)
        iupma = result.row("IUPMA")
        icma = result.row("ICMA")
        assert icma.report.pct_good >= iupma.report.pct_good - 5.0
        assert len(result.probing_costs) == TINY.train_count("unary")


class TestPlanQuality:
    def test_multi_states_dominates_one_state(self):
        from repro.experiments.plan_quality import run_plan_quality

        result = run_plan_quality(TINY, rounds=10, gap_seconds=600.0)
        assert len(result.rounds) == 10
        assert result.total_regret("multi-states") <= result.total_regret("one-state")
        # Every round's observed costs cover both candidate join sites.
        for r in result.rounds:
            assert set(r.observed_by_site) == {"left", "right"}
            assert set(r.chosen) == {"multi-states", "one-state"}


class TestProbeCacheQuality:
    def test_cache_cuts_probes_without_losing_every_plan(self):
        from repro.experiments.plan_quality import (
            render_probe_cache_quality,
            run_probe_cache_quality,
        )

        result = run_probe_cache_quality(
            TINY, rounds=8, gap_seconds=900.0, ttl=1800.0
        )
        assert len(result.rounds) == 8
        for r in result.rounds:
            assert set(r.chosen) == {"fresh-probe", "cached-probe"}
        fresh = result.probes_by_approach["fresh-probe"]
        cached = result.probes_by_approach["cached-probe"]
        # Fresh probes every optimization; the cache serves some rounds
        # from a reading taken within the TTL.
        assert fresh == 2 * len(result.rounds)
        assert 0 < cached < fresh
        rendered = render_probe_cache_quality(result)
        assert "probes executed" in rendered
        assert "cached-probe" in rendered


class TestSampleSizeAblation:
    def test_points_for_each_requested_size(self):
        from repro.experiments.sample_size_ablation import run_sample_size_ablation

        result = run_sample_size_ablation(TINY, sizes=(30, 60, 90))
        assert [p.sample_size for p in result.points] == [30, 60, 90]
        assert result.recommended > 0


class TestHarnessCache:
    def test_cached_class_experiment_memoizes_and_counts(self):
        from repro import obs
        from repro.experiments.harness import (
            cache_stats,
            cache_summary,
            cached_class_experiment,
            clear_cache,
        )

        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            clear_cache()
            a = cached_class_experiment(ORACLE_LIKE, G1, TINY)
            b = cached_class_experiment(ORACLE_LIKE, G1, TINY)
            assert a is b
            different = cached_class_experiment(ORACLE_LIKE, G1, TINY.with_seed(99))
            assert different is not a
            # Cache behaviour is no longer silent: 1 hit, 2 misses.
            assert cache_stats() == (1, 2)
            line = cache_summary()
            assert "1 hits / 2 misses" in line and "3 lookups" in line
        finally:
            obs.set_registry(previous)
            clear_cache()
