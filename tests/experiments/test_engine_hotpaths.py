"""The engine-hotpaths microbenchmark runner at deliberately tiny sizes.

The benchmark in ``benchmarks/test_bench_engine_hotpaths.py`` asserts the
speedup acceptance at quick-preset sizes; here we only check structure:
the runner times every case over identical inputs, the byte-stable
render excludes wall clock, and the JSON payload matches the schema
documented in EXPERIMENTS.md.
"""

import json

from repro.experiments.config import tiny
from repro.experiments.engine_hotpaths import (
    REPEATS,
    engine_hotpaths_payload,
    render_engine_hotpaths,
    render_engine_timings,
    run_engine_hotpaths,
)

TINY = tiny(seed=13)


class TestRunner:
    def test_cases_and_sizes(self):
        result = run_engine_hotpaths(TINY, scan_rows=3_000, join_rows=1_500)
        assert [c.name for c in result.cases] == [
            "seq_scan", "hash_join", "sort_merge_join", "histogram_build",
        ]
        assert result.scan_rows == 3_000 and result.join_rows == 1_500
        for case in result.cases:
            assert case.scalar_seconds > 0.0
            assert case.vectorized_seconds > 0.0
            assert case.repeats == REPEATS
        # The scan reduced the operand; the joins matched every key.
        assert 0 < result.case("seq_scan").output_cardinality < 3_000
        assert result.case("hash_join").output_cardinality > 0

    def test_buffer_cases_warm_to_full_hits(self):
        result = run_engine_hotpaths(TINY, scan_rows=3_000, join_rows=1_500)
        assert [c.name for c in result.buffer_cases] == ["seq_scan", "hash_join"]
        for case in result.buffer_cases:
            assert case.cold_physical_reads == case.logical_reads > 0
            assert case.warm_physical_reads == 0
            assert case.warm_hit_rate == 1.0
            assert case.hit_state in ("cold", "warm", "hot")

    def test_unknown_case_raises(self):
        result = run_engine_hotpaths(TINY, scan_rows=2_000, join_rows=1_000)
        try:
            result.case("merge_scan")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")


class TestRendering:
    def test_stable_render_has_no_wall_clock(self):
        result = run_engine_hotpaths(TINY, scan_rows=2_000, join_rows=1_000)
        rendered = render_engine_hotpaths(result)
        assert "seq_scan" in rendered and "hash_join" in rendered
        assert "ms" not in rendered and "speedup" not in rendered

    def test_timings_render_is_diagnostic(self):
        result = run_engine_hotpaths(TINY, scan_rows=2_000, join_rows=1_000)
        timings = render_engine_timings(result)
        assert "speedup" in timings and "vectorized" in timings


class TestPayload:
    def test_schema_round_trips_through_json(self):
        result = run_engine_hotpaths(TINY, scan_rows=2_000, join_rows=1_000)
        payload = json.loads(json.dumps(engine_hotpaths_payload(result)))
        assert payload["bench"] == "engine_hotpaths"
        assert payload["schema_version"] == 1
        assert payload["repeats"] == REPEATS
        assert {c["name"] for c in payload["cases"]} == {
            "seq_scan", "hash_join", "sort_merge_join", "histogram_build",
        }
        for case in payload["cases"]:
            assert case["speedup"] > 0.0
        assert [b["name"] for b in payload["buffer"]] == ["seq_scan", "hash_join"]
        for buffer_case in payload["buffer"]:
            assert buffer_case["warm_physical_reads"] == 0
