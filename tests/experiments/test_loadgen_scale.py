"""The loadgen scale bench: ladder shapes, payload schema, determinism."""

from dataclasses import replace

import pytest

from repro.experiments.loadgen_scale import (
    WORKER_LADDER,
    ladder_for,
    loadgen_scale_payload,
    render_loadgen_scale,
    render_loadgen_timings,
    run_loadgen_scale,
)

from ..loadgen.conftest import MICRO


class TestLadderFor:
    def test_default_ladder(self):
        assert ladder_for(None, shards=16) == WORKER_LADDER

    def test_capped_by_workers(self):
        assert ladder_for(2, shards=16) == (1, 2)

    def test_capped_by_shards(self):
        assert ladder_for(None, shards=3) == (1, 2)

    def test_single_worker(self):
        assert ladder_for(1, shards=16) == (1,)

    def test_off_ladder_cap_appended(self):
        assert ladder_for(3, shards=16) == (1, 2, 3)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="workers"):
            ladder_for(0, shards=4)


@pytest.fixture(scope="module")
def scale_result():
    config = replace(MICRO, loadgen_shards=2, loadgen_rounds=5)
    return run_loadgen_scale(config, workers=2, fault_plan="outage")


@pytest.mark.slow
class TestRunLoadgenScale:
    def test_ladder_ran_and_matches(self, scale_result):
        assert [r.workers for r in scale_result.reports] == [1, 2]
        assert scale_result.deterministic

    def test_payload_schema(self, scale_result):
        payload = loadgen_scale_payload(scale_result)
        assert payload["bench"] == "loadgen_scale"
        assert payload["schema_version"] == 1
        assert payload["shards"] == 2
        assert payload["rounds"] == 5
        assert payload["fault_plan"] == "outage"
        assert payload["deterministic_across_workers"] is True
        aggregate = payload["aggregate"]
        assert aggregate["requests"] == 2 * 5 * 3
        assert aggregate["completed"] == aggregate["requests"]
        assert len(payload["rungs"]) == 2
        for rung in payload["rungs"]:
            assert rung["qps"] > 0
            assert set(rung["latency_wall_seconds"]) == {
                "count",
                "p50",
                "p95",
                "p99",
            }
            assert "speedup_vs_serial" in rung

    def test_render_splits_deterministic_from_wall(self, scale_result):
        rendered = render_loadgen_scale(scale_result)
        assert "byte-identical" in rendered
        assert "fault plan: outage" in rendered
        assert "qps" not in rendered  # wall-clock facts stay off stdout
        timings = render_loadgen_timings(scale_result)
        assert "qps" in timings
        assert "workers=1" in timings and "workers=2" in timings
