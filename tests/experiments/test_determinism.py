"""Cross-process determinism and CLI parallel-equivalence guards.

The parallel runner's whole correctness story rests on one contract:
a class experiment's result is a pure function of its task identity and
config, never of process, worker order, or hash randomization.  These
tests enforce it from the outside — fresh interpreters, different
``PYTHONHASHSEED`` values, and the real ``python -m repro.experiments``
entry point.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Computes one tiny class experiment and dumps everything that must be
#: reproducible: coefficients, state boundaries, and validation stats.
_FINGERPRINT_SCRIPT = """
import json
from repro.core.classification import G1
from repro.engine.profiles import ORACLE_LIKE
from repro.experiments.config import tiny
from repro.experiments.harness import run_class_experiment

result = run_class_experiment(ORACLE_LIKE, G1, tiny())
payload = {}
for name, model in result.models.items():
    payload[name] = {
        "coefficients": [float(c) for c in model.coefficients],
        "boundaries": list(model.states.boundaries),
        "cmin": model.states.cmin,
        "cmax": model.states.cmax,
        "terms": list(model.term_names),
    }
for name, report in result.reports.items():
    payload[name + "_validation"] = report.row()
payload["test_points"] = [
    [p.result_tuples, p.observed, p.estimated_multi,
     p.estimated_one_state, p.estimated_static]
    for p in result.test_points
]
print(json.dumps(payload, sort_keys=True))
"""


def _run_python(code: str, hashseed: str, extra_env: dict | None = None) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = hashseed
    env.update(extra_env or {})
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcessDeterminism:
    def test_fresh_interpreters_agree_exactly(self):
        """Two cold processes (different hash seeds) → identical results."""
        first = json.loads(_run_python(_FINGERPRINT_SCRIPT, hashseed="0"))
        second = json.loads(_run_python(_FINGERPRINT_SCRIPT, hashseed="12345"))
        assert first == second


def _run_cli(args: list[str], cache_dir: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--preset", "tiny",
         "--cache-dir", str(cache_dir), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


@pytest.mark.slow
class TestParallelCLIEquivalence:
    """`--jobs N` must never change the artifact stream (stdout)."""

    def test_jobs4_matches_jobs1_and_warm_cache_recomputes_nothing(self, tmp_path):
        serial = _run_cli(["--jobs", "1"], tmp_path / "serial")
        parallel = _run_cli(["--jobs", "4"], tmp_path / "parallel")
        assert parallel.stdout == serial.stdout

        # Same cache dir again: the pool loads every task from disk.
        warm = _run_cli(["--jobs", "4"], tmp_path / "parallel")
        assert warm.stdout == serial.stdout
        assert "computed=0" in warm.stderr
        assert "cached=6" in warm.stderr

    def test_only_flag_limits_benches(self, tmp_path):
        proc = _run_cli(["--only", "table4"], tmp_path / "only")
        assert "Table 4" in proc.stdout
        assert "Table 5" not in proc.stdout
        assert "Figure 1" not in proc.stdout
