"""Golden-output tests for the quick-preset table renderings.

The checked-in files under ``tests/experiments/golden/`` are the exact
text ``render_table4`` / ``render_table5`` produce at the quick preset
with seed 7 — the same artifacts ``python -m repro.experiments`` prints.
Any drift in the pipeline (seeding, state determination, fitting,
validation) or in the formatting layer shows up here as a readable diff
before it reaches an EXPERIMENTS.md record run.

To regenerate after an *intentional* change::

    PYTHONPATH=src python - <<'EOF'
    from repro.experiments.config import quick
    from repro.experiments.table4 import render_table4, run_table4
    from repro.experiments.table5 import render_table5, run_table5
    cfg = quick(seed=7)
    open("tests/experiments/golden/table4_quick_seed7.txt", "w").write(
        render_table4(run_table4(cfg)) + "\\n")
    open("tests/experiments/golden/table5_quick_seed7.txt", "w").write(
        render_table5(run_table5(cfg)) + "\\n")
    EOF
"""

from pathlib import Path

import pytest

from repro.experiments.config import quick
from repro.experiments.table4 import render_table4, run_table4
from repro.experiments.table5 import render_table5, run_table5

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def config():
    return quick(seed=7)


def _assert_matches_golden(rendered: str, filename: str) -> None:
    golden = (GOLDEN_DIR / filename).read_text()
    assert rendered + "\n" == golden, (
        f"{filename} drifted — if the change is intentional, regenerate "
        f"the golden file (see this module's docstring)"
    )


@pytest.mark.slow
class TestGoldenTables:
    def test_table4_matches_golden(self, config):
        _assert_matches_golden(
            render_table4(run_table4(config)), "table4_quick_seed7.txt"
        )

    def test_table5_matches_golden(self, config):
        _assert_matches_golden(
            render_table5(run_table5(config)), "table5_quick_seed7.txt"
        )
