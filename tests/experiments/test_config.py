"""Unit tests for experiment configuration presets."""

from repro.core.classification import G1, G3
from repro.core.sampling import recommended_sample_size
from repro.experiments.config import ExperimentConfig, full, quick


def test_quick_is_small():
    config = quick()
    assert config.scale < 0.1
    assert config.unary_train < 370


def test_full_matches_paper_sizing():
    config = full()
    # eq. (4) sizes from §5: 370 unary, 550 join.
    assert config.unary_train == recommended_sample_size(G1.variables, 6) == 370
    assert config.join_train == recommended_sample_size(G3.variables, 6) == 550


def test_train_count_dispatch():
    config = ExperimentConfig(unary_train=10, join_train=20)
    assert config.train_count("unary") == 10
    assert config.train_count("join") == 20


def test_with_seed_replaces_only_seed():
    config = quick(seed=1).with_seed(42)
    assert config.seed == 42
    assert config.scale == quick().scale


def test_main_module_help_exits_cleanly():
    import pytest as _pytest

    from repro.experiments.__main__ import main

    with _pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
