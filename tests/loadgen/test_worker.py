"""Shard-level behaviour: training payloads, pure reruns, round records."""

import pytest

from repro.loadgen import (
    STEADY_SITE,
    VAR_SITE,
    ShardTask,
    deterministic_json,
    make_universe,
    run_shard,
    universe_seed,
)

GAP = 600.0


def calm_task(config, rounds=5, index=0):
    return ShardTask(
        index=index,
        scenario="calm",
        rounds=rounds,
        gap_seconds=GAP,
        config=config,
    )


def test_universe_is_reproducible(micro_config):
    var_a, steady_a = make_universe(micro_config)
    var_b, steady_b = make_universe(micro_config)
    assert var_a.name == VAR_SITE and steady_a.name == STEADY_SITE
    table = micro_config.join_tables[0]
    assert len(var_a.database.catalog.table(table)) == len(
        var_b.database.catalog.table(table)
    )
    assert universe_seed(micro_config) == universe_seed(micro_config)


def test_trained_payload_covers_both_sites(trained_payload):
    models = trained_payload["models"]
    assert len(models) == 4
    sites = {key.split("/")[0] for key in models}
    assert sites == {VAR_SITE, STEADY_SITE}


@pytest.mark.slow
def test_run_shard_calm_counts(micro_config, trained_payload):
    task = calm_task(micro_config, rounds=5)
    report = run_shard(task, trained_payload)
    expected = task.rounds * task.queries_per_round
    assert report.requests == expected
    assert report.completed == expected
    assert report.failed == 0
    assert len(report.latencies) == expected
    assert len(report.wall_latencies) == expected
    assert all(value > 0 for value in report.latencies)
    assert len(report.rounds) == task.rounds
    assert [r.index for r in report.rounds] == list(range(task.rounds))
    assert report.models_imported == 4
    # Simulated time advances monotonically round to round.
    times = [r.sim_time for r in report.rounds]
    assert times == sorted(times)
    assert not any(r.disturbed for r in report.rounds)


@pytest.mark.slow
def test_run_shard_is_a_pure_function(micro_config, trained_payload):
    """Same (task, payload) in, byte-identical deterministic report out."""
    task = calm_task(micro_config, rounds=4)
    first = run_shard(task, trained_payload)
    second = run_shard(task, trained_payload)
    assert deterministic_json(first.deterministic_dict()) == deterministic_json(
        second.deterministic_dict()
    )


@pytest.mark.slow
def test_shards_differ_only_by_stream(micro_config, trained_payload):
    """Different indexes serve different queries over the same universe."""
    first = run_shard(calm_task(micro_config, rounds=4, index=0), trained_payload)
    second = run_shard(calm_task(micro_config, rounds=4, index=1), trained_payload)
    assert first.latencies != second.latencies


def test_deterministic_dict_drops_wall_fields(micro_config, trained_payload):
    report = run_shard(calm_task(micro_config, rounds=2), trained_payload)
    payload = report.deterministic_dict()
    assert "wall_latencies" not in payload
    assert "wall_seconds" not in payload
    assert report.wall_seconds > 0.0
