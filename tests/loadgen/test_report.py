"""Units for drift-loop measurement and percentile conventions."""

from repro.loadgen import measure_drift_loop, percentile

GAP = 600.0


def rounds_from(spec):
    """Build round dicts from (notes, shift, events, samples, good) rows."""
    rounds = []
    for index, (notes, shift, events, samples, good) in enumerate(spec):
        rounds.append(
            {
                "index": index,
                "fault_notes": notes,
                "shift_started": shift,
                "drift_events": [{} for _ in range(events)],
                "samples": samples,
                "good_pct": good,
            }
        )
    return rounds


GOOD = ([], False, 0, 9, 90.0)
BAD = ([], False, 0, 9, 10.0)


class TestMeasureDriftLoop:
    def test_undisturbed_timeline(self):
        stats = measure_drift_loop(rounds_from([GOOD] * 5), GAP)
        assert stats.onset_round is None
        assert not stats.detected
        assert not stats.recovered
        assert stats.detect_latency_rounds is None
        assert stats.recover_latency_rounds is None

    def test_fault_detect_and_recover(self):
        spec = [
            GOOD,
            GOOD,
            (["outage:applied"], False, 0, 9, 80.0),  # onset, not yet seen
            ([], False, 1, 9, 30.0),                  # detector fires
            BAD,
            (["outage:cleared"], False, 0, 9, 40.0),  # fault ends
            ([], False, 0, 4, 85.0),                  # back in the band
            GOOD,
        ]
        stats = measure_drift_loop(rounds_from(spec), GAP, min_samples=3)
        assert stats.onset_round == 2
        assert stats.detect_round == 3
        assert stats.cleared_round == 5
        assert stats.recover_round == 6
        assert stats.detect_latency_rounds == 1
        assert stats.recover_latency_rounds == 3
        d = stats.to_dict()
        assert d["detect_latency_seconds"] == 1 * GAP
        assert d["recover_latency_seconds"] == 3 * GAP

    def test_recovery_waits_for_post_clear_event(self):
        # A model rebuilt during the fault keeps serving after the clear;
        # the event it raises then must push the recovery anchor forward.
        spec = [
            GOOD,
            (["outage:applied"], False, 0, 9, 70.0),
            ([], False, 1, 9, 20.0),
            (["outage:cleared"], False, 0, 9, 80.0),  # good, but too early
            ([], False, 1, 0, 0.0),                   # late rebuild event
            ([], False, 0, 5, 90.0),
        ]
        stats = measure_drift_loop(rounds_from(spec), GAP, min_samples=3)
        assert stats.detect_round == 2
        assert stats.cleared_round == 3
        assert stats.recover_round == 5

    def test_regime_shift_anchors_at_detection(self):
        # Shifts never clear; recovery means good *under the new regime*.
        spec = [
            GOOD,
            ([], True, 0, 9, 85.0),  # shift starts (still looks good)
            ([], False, 1, 9, 25.0),
            BAD,
            ([], False, 0, 6, 75.0),
        ]
        stats = measure_drift_loop(rounds_from(spec), GAP, min_samples=3)
        assert stats.onset_round == 1
        assert stats.detect_round == 2
        assert stats.cleared_round is None
        assert stats.recover_round == 4

    def test_recovery_requires_enough_samples(self):
        spec = [
            (["slowdown:applied"], False, 1, 9, 20.0),
            (["slowdown:cleared"], False, 0, 2, 100.0),  # window too thin
            ([], False, 0, 3, 100.0),
        ]
        stats = measure_drift_loop(rounds_from(spec), GAP, min_samples=3)
        assert stats.recover_round == 2

    def test_detection_without_recovery(self):
        spec = [
            (["outage:applied"], False, 1, 9, 20.0),
            BAD,
            BAD,
        ]
        stats = measure_drift_loop(rounds_from(spec), GAP)
        assert stats.detected
        assert not stats.recovered

    def test_accepts_dataclass_records(self):
        from repro.loadgen import RoundRecord

        rounds = [
            RoundRecord(index=0, sim_time=GAP, disturbed=False),
            RoundRecord(
                index=1,
                sim_time=2 * GAP,
                disturbed=True,
                fault_notes=["outage:applied"],
                drift_events=[{"rule": "good_band"}],
                samples=9,
                good_pct=10.0,
            ),
            RoundRecord(
                index=2,
                sim_time=3 * GAP,
                disturbed=False,
                fault_notes=["outage:cleared"],
                samples=6,
                good_pct=80.0,
            ),
        ]
        stats = measure_drift_loop(rounds, GAP, min_samples=3)
        assert (stats.onset_round, stats.detect_round) == (1, 1)
        assert stats.recover_round == 2


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_convention_matches_serving_bench(self):
        values = [float(v) for v in range(10)]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 9.0
        assert percentile(values, 0.99) == 9.0

    def test_single_value(self):
        assert percentile([3.5], 0.99) == 3.5
