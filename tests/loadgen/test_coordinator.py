"""Coordinator behaviour: config shapes, fan-out, worker-count invariance."""

import pytest

from repro.experiments.config import tiny
from repro.loadgen import (
    Coordinator,
    FaultEvent,
    FaultSchedule,
    LoadGenConfig,
    default_loadgen_config,
)

GAP = 600.0


def micro_loadgen(config, **overrides):
    defaults = dict(
        experiment=config,
        shards=3,
        rounds=6,
        gap_seconds=GAP,
        faults=FaultSchedule(
            (
                FaultEvent(0, "outage", 2 * GAP, 2 * GAP, level=0.98),
                FaultEvent(1, "slowdown", 2 * GAP, 2 * GAP, level=0.9),
            )
        ),
    )
    defaults.update(overrides)
    return LoadGenConfig(**defaults)


class TestLoadGenConfig:
    def test_validation(self, micro_config):
        with pytest.raises(ValueError, match="shards"):
            LoadGenConfig(experiment=micro_config, shards=0, rounds=4)
        with pytest.raises(ValueError, match="rounds"):
            LoadGenConfig(experiment=micro_config, shards=2, rounds=0)
        with pytest.raises(ValueError, match="scenario_mix"):
            LoadGenConfig(
                experiment=micro_config, shards=2, rounds=4, scenario_mix=()
            )

    def test_scenario_cycling(self, micro_config):
        config = LoadGenConfig(
            experiment=micro_config,
            shards=5,
            rounds=4,
            scenario_mix=("calm", "regime_shift"),
        )
        assert [config.scenario_for(i) for i in range(5)] == [
            "calm",
            "regime_shift",
            "calm",
            "regime_shift",
            "calm",
        ]

    def test_tasks_route_faults_per_shard(self, micro_config):
        config = micro_loadgen(micro_config)
        tasks = config.tasks()
        assert len(tasks) == 3
        assert [e.kind for e in tasks[0].faults] == ["outage"]
        assert [e.kind for e in tasks[1].faults] == ["slowdown"]
        assert tasks[2].faults == ()
        assert all(t.rounds == 6 for t in tasks)

    def test_default_config_uses_experiment_shape(self):
        config = default_loadgen_config(tiny(), fault_plan="mixed")
        assert config.shards == tiny().loadgen_shards
        assert config.rounds == tiny().loadgen_rounds
        assert len(config.faults) == 2
        none = default_loadgen_config(tiny(), fault_plan="none")
        assert len(none.faults) == 0


class TestCoordinator:
    def test_rejects_bad_worker_count(self, micro_config, trained_payload):
        coordinator = Coordinator(
            micro_loadgen(micro_config), payload=trained_payload
        )
        with pytest.raises(ValueError, match="workers"):
            coordinator.run(workers=0)

    def test_train_is_idempotent(self, micro_config, trained_payload):
        coordinator = Coordinator(
            micro_loadgen(micro_config), payload=trained_payload
        )
        assert coordinator.train() is trained_payload
        assert coordinator.train() is trained_payload

    @pytest.mark.slow
    def test_aggregate_invariant_across_worker_counts(
        self, micro_config, trained_payload
    ):
        """THE determinism contract: workers only change concurrency."""
        config = micro_loadgen(micro_config)
        coordinator = Coordinator(config, payload=trained_payload)
        serial = coordinator.run(workers=1)
        pooled = coordinator.run(workers=2)
        assert serial.deterministic_payload() == pooled.deterministic_payload()

        aggregate = serial.aggregate()
        expected = config.shards * config.rounds * config.queries_per_round
        assert aggregate["requests"] == expected
        assert aggregate["completed"] == expected
        assert aggregate["failed"] == 0
        assert aggregate["shards"] == config.shards
        assert len(aggregate["per_shard"]) == config.shards
        # The scripted faults landed: both disturbed shards measured.
        assert "0" in aggregate["drift"]["loops"]

    @pytest.mark.slow
    def test_wall_stats_are_separate_from_the_aggregate(
        self, micro_config, trained_payload
    ):
        config = micro_loadgen(micro_config, shards=2, rounds=3, faults=FaultSchedule())
        report = Coordinator(config, payload=trained_payload).run(workers=1)
        stats = report.wall_stats()
        assert stats["workers"] == 1
        assert stats["wall_seconds"] > 0
        assert stats["qps"] > 0
        assert stats["latency_wall_seconds"]["count"] == config.shards * 9
        assert "wall_seconds" not in report.deterministic_payload()


class TestStrategyMix:
    def test_validation_rejects_empty_mix(self, micro_config):
        with pytest.raises(ValueError, match="strategy_mix"):
            LoadGenConfig(
                experiment=micro_config, shards=2, rounds=4, strategy_mix=()
            )

    def test_default_mix_is_pure_ols(self, micro_config):
        config = micro_loadgen(micro_config)
        assert config.strategies() == ("mlr.ols",)
        assert all(t.strategy == "mlr.ols" for t in config.tasks())

    def test_strategy_cycling_and_distinct_order(self, micro_config):
        config = LoadGenConfig(
            experiment=micro_config,
            shards=5,
            rounds=4,
            strategy_mix=("mlr.ols", "mlr.rls"),
        )
        assert [config.strategy_for(i) for i in range(5)] == [
            "mlr.ols",
            "mlr.rls",
            "mlr.ols",
            "mlr.rls",
            "mlr.ols",
        ]
        assert config.strategies() == ("mlr.ols", "mlr.rls")
        assert [t.strategy for t in config.tasks()][:2] == ["mlr.ols", "mlr.rls"]

    def test_seed_payload_only_covers_default_strategy(
        self, micro_config, trained_payload
    ):
        config = micro_loadgen(
            micro_config, strategy_mix=("mlr.ols", "mlr.rls")
        )
        coordinator = Coordinator(config, payload=trained_payload)
        coordinator.train()
        # The seeded OLS payload is reused verbatim; only RLS trains.
        assert coordinator.payloads["mlr.ols"] is trained_payload
        assert set(coordinator.payloads) == {"mlr.ols", "mlr.rls"}
        assert coordinator.payload is trained_payload

    @pytest.mark.slow
    def test_online_shard_runs_clean(self, micro_config):
        """One RLS shard end to end: trains its own payload, zero failures."""
        config = micro_loadgen(
            micro_config,
            shards=1,
            rounds=4,
            faults=FaultSchedule(),
            strategy_mix=("mlr.rls",),
        )
        report = Coordinator(config).run(workers=1)
        (shard,) = report.shard_reports
        assert shard.strategy == "mlr.rls"
        assert shard.failed == 0
        assert shard.completed == shard.requests
