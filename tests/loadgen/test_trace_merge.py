"""Cross-process trace merging: byte-identity, shapes, analytics feed.

The merged trace is the loadgen side of the tracing acceptance
criterion: shard workers sample and export spans locally, and the
coordinator merges them in index order into one canonical JSONL
document that must be byte-identical at any worker count.
"""

import json

import pytest

from repro.loadgen import Coordinator, FaultSchedule, LoadGenConfig
from repro.obs.trace_analysis import (
    ROOT_SPAN_NAME,
    group_traces,
    trace_root,
    trace_stage_seconds,
)


def traced_loadgen(config, **overrides):
    defaults = dict(
        experiment=config,
        shards=2,
        rounds=3,
        faults=FaultSchedule(),
        trace_sample_rate=1.0,
    )
    defaults.update(overrides)
    return LoadGenConfig(**defaults)


@pytest.fixture(scope="module")
def traced_report(micro_config, trained_payload):
    config = traced_loadgen(micro_config)
    return Coordinator(config, payload=trained_payload).run(workers=1)


class TestMergedTrace:
    def test_merged_trace_is_canonical_jsonl(self, traced_report):
        merged = traced_report.merged_trace()
        lines = merged.splitlines()
        stats = traced_report.trace_stats()
        assert stats["spans"] == len(lines) > 0
        assert stats["sampled"] > 0
        for line in lines:
            span = json.loads(line)
            # Canonical rendering: sorted keys, compact separators.
            assert line == json.dumps(
                span, sort_keys=True, separators=(",", ":")
            )

    def test_shards_merge_in_index_order(self, traced_report):
        spans = [
            json.loads(line)
            for line in traced_report.merged_trace().splitlines()
        ]
        shards = [span["trace_id"].split("-")[0] for span in spans]
        # s000 spans come before s001 spans, never interleaved.
        assert shards == sorted(shards)
        assert set(shards) == {"s000", "s001"}

    def test_merged_trace_feeds_the_analytics_pipeline(self, traced_report):
        """Every merged trace is one connected tree the stage-breakdown
        tooling can attribute — the cross-process postmortem contract."""
        spans = [
            json.loads(line)
            for line in traced_report.merged_trace().splitlines()
        ]
        groups = group_traces(spans)
        assert len(groups) == traced_report.trace_stats()["sampled"]
        for trace_spans in groups.values():
            root = trace_root(trace_spans)
            assert root["name"] == ROOT_SPAN_NAME
            by_id = {s["span_id"]: s for s in trace_spans}
            assert all(
                s["parent_id"] is None or s["parent_id"] in by_id
                for s in trace_spans
            )
            totals = trace_stage_seconds(trace_spans)
            assert totals["queue"] >= 0.0
            assert sum(totals.values()) == pytest.approx(root["duration"])

    def test_write_merged_trace_round_trips(self, traced_report, tmp_path):
        path = tmp_path / "merged.jsonl"
        count = traced_report.write_merged_trace(path)
        assert count == traced_report.trace_stats()["spans"]
        assert path.read_text(encoding="utf-8") == traced_report.merged_trace()

    def test_fractional_rate_keeps_a_deterministic_subset(
        self, micro_config, trained_payload
    ):
        # Enough rounds that the exemplar slots stabilize and later
        # traces stop being force-kept — only then can drops appear.
        full_config = traced_loadgen(micro_config, rounds=10)
        sampled_config = traced_loadgen(
            micro_config, rounds=10, trace_sample_rate=0.0625
        )
        full = Coordinator(full_config, payload=trained_payload).run(workers=1)
        report = Coordinator(sampled_config, payload=trained_payload).run(
            workers=1
        )
        stats, full_stats = report.trace_stats(), full.trace_stats()
        assert 0 < stats["sampled"] < full_stats["sampled"]
        assert stats["dropped"] > 0
        assert stats["sampled"] + stats["dropped"] == full_stats["sampled"]
        sampled_ids = {
            json.loads(line)["trace_id"]
            for line in report.merged_trace().splitlines()
        }
        full_ids = {
            json.loads(line)["trace_id"]
            for line in full.merged_trace().splitlines()
        }
        # The head-sampled keep set is a subset of the rate-1.0 keep set
        # (same seed, same ids, lower threshold) — plus force-keeps,
        # which retain full span trees of their own.
        assert sampled_ids < full_ids

    @pytest.mark.slow
    def test_merged_trace_is_byte_identical_across_worker_counts(
        self, micro_config, trained_payload, traced_report
    ):
        """THE tracing determinism contract: process-pool fan-out only
        changes concurrency, never a byte of the merged trace."""
        config = traced_loadgen(micro_config)
        pooled = Coordinator(config, payload=trained_payload).run(workers=2)
        assert pooled.merged_trace() == traced_report.merged_trace()
        assert pooled.trace_stats() == traced_report.trace_stats()
