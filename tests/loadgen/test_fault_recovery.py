"""The drift loop under each disturbance kind: detect, rebuild, recover.

One test per disturbance — site outage, site slowdown, and the workload
scenario's own regime shift — each asserting the full loop on a single
shard timeline: the disturbance lands, the armed drift policy raises an
event within a few rounds, the maintainer publishes a re-derived model
through the registry, and the watched class's accuracy returns to the
§5 good band.  Assertions are rule-agnostic (an outage may surface via
``good_band`` before ``probe_escape`` accumulates readings); what
matters is the detect→rebuild→recover loop closing.
"""

import pytest

from repro.loadgen import (
    VAR_SITE,
    WATCHED_CLASS,
    FaultEvent,
    ShardTask,
    measure_drift_loop,
    run_shard,
)

GAP = 600.0
ROUNDS = 18

pytestmark = pytest.mark.slow


def fault_task(config, kind, level, scenario="calm"):
    """Fault from round 4 through round 8 — half the timeline to recover."""
    return ShardTask(
        index=0,
        scenario=scenario,
        rounds=ROUNDS,
        gap_seconds=GAP,
        config=config,
        faults=(
            FaultEvent(
                shard=0,
                kind=kind,
                at_seconds=4 * GAP,
                duration_seconds=5 * GAP,
                level=level,
            ),
        ),
    )


def assert_loop_closed(report, *, expects_clear):
    stats = measure_drift_loop(report.rounds, GAP, floor_pct=50.0, min_samples=3)
    assert stats.onset_round is not None
    assert stats.detected, f"no drift event after onset: {report.rounds}"
    assert stats.detect_latency_rounds <= 3
    if expects_clear:
        assert stats.cleared_round is not None
    else:
        assert stats.cleared_round is None
    assert stats.recovered, "accuracy never returned to the good band"
    assert stats.recover_round < ROUNDS
    # Recovery came from a registry publish, not luck: at least one
    # drift-triggered version of the watched class went live.
    watched = [
        (site, label, version, trigger)
        for site, label, version, trigger in report.published
        if site == VAR_SITE and label == WATCHED_CLASS
    ]
    assert watched, f"no drift-published rebuild: {report.published}"
    assert all(version > 1 for _, _, version, _ in watched)
    return stats


def test_outage_detected_and_recovered(micro_config, trained_payload):
    report = run_shard(
        fault_task(micro_config, "outage", level=0.98), trained_payload
    )
    # The outage swapped the probe: transitions were logged both ways.
    notes = [note for _, note in report.fault_log]
    assert notes.count("outage:applied") == 1
    assert notes.count("outage:cleared") == 1
    # Serving survives the outage (plans degrade to stale probe data).
    assert report.failed == 0
    assert report.completed == ROUNDS * 3
    assert_loop_closed(report, expects_clear=True)


def test_slowdown_detected_and_recovered(micro_config, trained_payload):
    report = run_shard(
        fault_task(micro_config, "slowdown", level=0.9), trained_payload
    )
    notes = [note for _, note in report.fault_log]
    assert notes.count("slowdown:applied") == 1
    assert notes.count("slowdown:cleared") == 1
    assert report.failed == 0
    assert_loop_closed(report, expects_clear=True)


def test_regime_shift_detected_and_recovered(micro_config, trained_payload):
    task = ShardTask(
        index=0,
        scenario="regime_shift",
        rounds=ROUNDS,
        gap_seconds=GAP,
        config=micro_config,
    )
    report = run_shard(task, trained_payload)
    assert report.fault_log == []  # no scripted fault — the workload shifts
    assert any(r.shift_started for r in report.rounds)
    assert report.failed == 0
    stats = assert_loop_closed(report, expects_clear=False)
    # The shift never clears, so the tail rounds stay disturbed *and* good:
    # the rebuilt model serves the new regime, which is the §5 story.
    tail = report.rounds[stats.recover_round]
    assert tail.disturbed
    assert tail.good_pct >= 50.0


def test_calm_baseline_raises_no_events(micro_config, trained_payload):
    """The detector's false-positive guard: calm load, no faults."""
    task = ShardTask(
        index=0,
        scenario="calm",
        rounds=10,
        gap_seconds=GAP,
        config=micro_config,
    )
    report = run_shard(task, trained_payload)
    stats = measure_drift_loop(report.rounds, GAP)
    assert stats.onset_round is None
    assert report.rounds[-1].active_version == 1
