"""Units for the fault-injection layer (schedule, plans, injector)."""

import pytest

from repro.loadgen import (
    FAULT_PLANS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    SiteOutageError,
    UnavailableProbe,
    named_fault_plan,
)

GAP = 600.0


class RecordingBuilder:
    """Stands in for a LoadBuilder: records pinned contention levels."""

    def __init__(self):
        self.constants = []

    def constant(self, level):
        self.constants.append(level)


class StubAgent:
    """Just enough of an MDBSAgent for the injector: a probe attribute."""

    def __init__(self):
        self.probe = object()
        self.site = "var_site"


def make_injector(events):
    agent = StubAgent()
    builder = RecordingBuilder()
    restores = []
    injector = FaultInjector(
        tuple(events), agent, builder, lambda: restores.append(True)
    )
    return injector, agent, builder, restores


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "meteor", 10.0, 5.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration_seconds"):
            FaultEvent(0, "outage", 10.0, 0.0)

    def test_ends_at(self):
        event = FaultEvent(0, "outage", 10.0, 5.0)
        assert event.ends_at == 15.0


class TestFaultSchedule:
    def test_for_shard_filters_and_sorts(self):
        late = FaultEvent(1, "outage", 50.0, 5.0)
        early = FaultEvent(1, "slowdown", 10.0, 5.0)
        other = FaultEvent(0, "outage", 1.0, 5.0)
        schedule = FaultSchedule((late, early, other))
        assert schedule.for_shard(1) == (early, late)
        assert schedule.for_shard(0) == (other,)
        assert schedule.for_shard(7) == ()
        assert len(schedule) == 3


class TestNamedFaultPlan:
    def test_none_is_empty(self):
        assert len(named_fault_plan("none", 4, 16, GAP)) == 0

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            named_fault_plan("chaos", 4, 16, GAP)

    def test_outage_targets_shard_zero(self):
        (event,) = named_fault_plan("outage", 4, 16, GAP).events
        assert event.shard == 0
        assert event.kind == "outage"
        assert event.at_seconds > 0
        assert event.duration_seconds > 0

    def test_mixed_covers_both_kinds(self):
        plan = named_fault_plan("mixed", 4, 16, GAP)
        kinds = {e.kind for e in plan.events}
        assert kinds == {"outage", "slowdown"}
        assert {e.shard for e in plan.events} == {0, 1}

    def test_mixed_single_shard_degrades_to_outage(self):
        plan = named_fault_plan("mixed", 1, 16, GAP)
        assert [e.kind for e in plan.events] == ["outage"]

    def test_plan_vocabulary(self):
        assert set(FAULT_PLANS) == {"none", "outage", "slowdown", "mixed"}


def test_unavailable_probe_raises():
    with pytest.raises(SiteOutageError, match="var_site"):
        UnavailableProbe("var_site").observe()


class TestFaultInjector:
    def test_outage_swaps_probe_and_restores(self):
        event = FaultEvent(0, "outage", 100.0, 50.0, level=0.95)
        injector, agent, builder, restores = make_injector([event])
        original = agent.probe

        assert injector.step(50.0) == []
        assert agent.probe is original

        assert injector.step(120.0) == ["outage:applied"]
        assert isinstance(agent.probe, UnavailableProbe)
        assert builder.constants == [0.95]
        assert injector.active is event

        assert injector.step(200.0) == ["outage:cleared"]
        assert agent.probe is original
        assert restores == [True]
        assert injector.active is None
        assert [note for _, note in injector.transitions] == [
            "outage:applied",
            "outage:cleared",
        ]

    def test_slowdown_leaves_probe_alone(self):
        event = FaultEvent(0, "slowdown", 100.0, 50.0, level=0.9)
        injector, agent, builder, restores = make_injector([event])
        original = agent.probe
        injector.step(100.0)
        assert agent.probe is original
        assert builder.constants == [0.9]
        injector.step(150.0)
        assert agent.probe is original
        assert restores == [True]

    def test_event_entirely_between_rounds_is_skipped(self):
        event = FaultEvent(0, "outage", 100.0, 50.0)
        injector, agent, _, restores = make_injector([event])
        original = agent.probe
        # The clock jumps straight past the whole fault window.
        assert injector.step(500.0) == []
        assert injector.active is None
        assert agent.probe is original
        assert restores == []

    def test_back_to_back_events_replace(self):
        first = FaultEvent(0, "outage", 100.0, 1000.0)
        second = FaultEvent(0, "slowdown", 200.0, 1000.0)
        injector, agent, _, _ = make_injector([first, second])
        original = agent.probe
        injector.step(100.0)
        assert injector.active is first
        notes = injector.step(250.0)
        # The overlapping later event clears the earlier one first.
        assert notes == ["outage:cleared", "slowdown:applied"]
        assert injector.active is second
        assert agent.probe is original
