"""Loadgen test fixtures: a micro experiment config + one training pass.

Model derivation dominates the cost of every loadgen test, and the
coordinator's design makes the trained payload explicitly shareable
(train once, import everywhere) — so the suite trains exactly once, at a
micro scale sized for seconds-long shard timelines.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.loadgen import train_models

#: Micro preset: big enough for the drift loop's accuracy windows to be
#: meaningful, small enough that one shard round serves in milliseconds.
MICRO = ExperimentConfig(
    scale=0.006,
    seed=13,
    unary_train=40,
    join_train=40,
    static_train=20,
    test_count=10,
    join_tables=("R1", "R2", "R3", "R4"),
    loadgen_shards=3,
    loadgen_rounds=10,
)


@pytest.fixture(scope="session")
def micro_config() -> ExperimentConfig:
    return MICRO


@pytest.fixture(scope="session")
def trained_payload() -> dict:
    """The coordinator-side training pass, shared by every test."""
    return train_models(MICRO)
