"""The shared seeded two-site universe helper.

The drift-detection experiment, the serving-throughput bench, and the
loadgen shards all used to hand-roll the same two ``make_site`` calls;
:func:`~repro.workload.scenarios.make_two_site_universe` centralizes
that.  The determinism test proves the helper reproduces the inline
construction byte for byte — populated tables, query streams, and
contention traces — so the dedupe could not have shifted any experiment
output.
"""

from repro.core.classification import G1, G3
from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.workload.scenarios import make_site, make_two_site_universe

SCALE = 0.01
SEEDS = (107, 108)
CALM = (0.0, 0.45)


def inline_universe():
    """The pre-dedupe construction, replicated verbatim."""
    left = make_site(
        "u_left", profile=ORACLE_LIKE, environment_kind="uniform",
        scale=SCALE, seed=SEEDS[0],
    )
    right = make_site(
        "u_right", profile=DB2_LIKE, environment_kind="uniform",
        scale=SCALE, seed=SEEDS[1],
    )
    left.load_builder.uniform(*CALM)
    right.load_builder.uniform(*CALM)
    return left, right


def helper_universe():
    return make_two_site_universe(
        names=("u_left", "u_right"),
        profiles=(ORACLE_LIKE, DB2_LIKE),
        seeds=SEEDS,
        scale=SCALE,
        calm_range=CALM,
    )


def site_fingerprint(site, steps=12, gap=600.0):
    """Everything downstream consumes: schema, data sizes, queries, load."""
    tables = {
        t.name: (t.cardinality, t.tuple_length, t.clustered_on)
        for t in site.database.catalog.tables()
    }
    queries = [repr(q) for q in site.generator.queries_for(G1, 8)]
    queries += [repr(q) for q in site.generator.queries_for(G3, 4)]
    trace = []
    for _ in range(steps):
        site.environment.advance(gap)
        trace.append(
            (site.environment.level(), site.environment.concurrent_processes())
        )
    return {
        "name": site.name,
        "profile": site.database.profile.name,
        "tables": tables,
        "queries": queries,
        "trace": trace,
    }


class TestUniverseDeterminism:
    def test_helper_matches_inline_construction(self):
        for inline, helped in zip(inline_universe(), helper_universe()):
            assert site_fingerprint(inline) == site_fingerprint(helped)

    def test_same_arguments_same_universe(self):
        first = [site_fingerprint(s) for s in helper_universe()]
        second = [site_fingerprint(s) for s in helper_universe()]
        assert first == second

    def test_seeds_differentiate_sites(self):
        left, right = helper_universe()
        assert site_fingerprint(left) != site_fingerprint(right)

    def test_calm_range_is_optional(self):
        left, _ = make_two_site_universe(
            names=("c_left", "c_right"),
            profiles=(ORACLE_LIKE, ORACLE_LIKE),
            seeds=(1, 2),
            scale=SCALE,
        )
        # Without a calm range the stock uniform environment applies:
        # levels range over [0, 1), not the pinned calm band.
        levels = []
        for _ in range(40):
            left.environment.advance(600.0)
            levels.append(left.environment.level())
        assert max(levels) > CALM[1]
