"""Unit tests for synthetic table generation."""

import numpy as np
import pytest

from repro.engine.index import IndexKind
from repro.workload.tablegen import (
    COLUMN_NAMES,
    PAPER_CARDINALITIES,
    TableSpec,
    build_local_database,
    generate_rows,
    paper_workload,
    populate_database,
    small_workload,
)


class TestSpecs:
    def test_paper_workload_has_12_tables(self):
        spec = paper_workload(scale=1.0)
        assert len(spec.tables) == 12
        assert [t.name for t in spec.tables] == [f"R{i}" for i in range(1, 13)]

    def test_paper_cardinalities_match_paper_range(self):
        assert PAPER_CARDINALITIES[0] == 3_000
        assert PAPER_CARDINALITIES[-1] == 250_000

    def test_scale_shrinks_proportionally(self):
        spec = paper_workload(scale=0.01)
        assert spec.tables[-1].cardinality == 2_500
        assert all(t.cardinality >= 200 for t in spec.tables)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            paper_workload(scale=0.0)

    def test_every_third_table_clustered(self):
        spec = paper_workload(scale=0.01)
        clustered = [t.name for t in spec.tables if t.clustered_index_on]
        assert clustered == ["R3", "R6", "R9", "R12"]

    def test_resolved_ranges_a1_tracks_cardinality(self):
        spec = TableSpec("T", 50_000)
        assert spec.resolved_ranges()["a1"] == 50_000
        tiny = TableSpec("T", 100)
        assert tiny.resolved_ranges()["a1"] == 1_000

    def test_range_override(self):
        spec = TableSpec("T", 100, ranges={"a4": 7})
        assert spec.resolved_ranges()["a4"] == 7

    def test_small_workload_validates(self):
        with pytest.raises(ValueError):
            small_workload(num_tables=0)


class TestRowGeneration:
    def test_rows_respect_ranges(self):
        spec = TableSpec("T", 500)
        rng = np.random.default_rng(1)
        rows = generate_rows(spec, rng)
        ranges = spec.resolved_ranges()
        assert len(rows) == 500
        for row in rows:
            for value, col in zip(row, COLUMN_NAMES):
                assert 0 <= value < ranges[col]

    def test_deterministic_given_seed(self):
        spec = TableSpec("T", 100)
        a = generate_rows(spec, np.random.default_rng(5))
        b = generate_rows(spec, np.random.default_rng(5))
        assert a == b


class TestPopulation:
    def test_populate_creates_tables_and_indexes(self, tiny_workload):
        db = build_local_database("db", workload=tiny_workload)
        assert db.catalog.table_names == ["R1", "R2", "R3"]
        # Non-clustered a1 index everywhere.
        for name in db.catalog.table_names:
            index = db.catalog.index_on(name, "a1")
            assert index is not None
        # R3 additionally clustered on a2.
        clustered = db.catalog.index_on("R3", "a2")
        assert clustered is not None and clustered.kind is IndexKind.CLUSTERED
        assert db.catalog.table("R3").clustered_on == "a2"

    def test_statistics_analyzed(self, tiny_workload):
        db = build_local_database("db", workload=tiny_workload)
        stats = db.catalog.table("R1").statistics
        assert stats.column("a1").distinct_count > 0

    def test_same_seed_same_content(self, tiny_workload):
        a = build_local_database("a", workload=tiny_workload)
        b = build_local_database("b", workload=tiny_workload)
        assert a.catalog.table("R1").rows() == b.catalog.table("R1").rows()

    def test_populate_returns_database(self, tiny_workload):
        from repro.engine.database import LocalDatabase

        db = LocalDatabase("x")
        assert populate_database(db, tiny_workload) is db
