"""Unit tests for class-targeted query generation."""

import pytest

from repro.core.classification import G1, G2, G3, G4, G5, GC, classify
from repro.workload.querygen import (
    CLASS_SELECTIVITY,
    GenerationError,
    QueryGenerator,
    SelectivityRange,
)
from repro.workload.scenarios import make_site


@pytest.fixture(scope="module")
def site():
    return make_site("qgen_site", environment_kind="static", scale=0.01, seed=17)


class TestSelectivityRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelectivityRange(0.0, 0.5)
        with pytest.raises(ValueError):
            SelectivityRange(0.6, 0.5)

    def test_draw_within_bounds(self, rng):
        r = SelectivityRange(0.01, 0.5)
        for _ in range(50):
            assert 0.01 <= r.draw(rng) <= 0.5

    def test_class_table_complete(self):
        assert {"G1", "G2", "GC", "G3", "G4", "G5"} <= set(CLASS_SELECTIVITY)


class TestGeneration:
    @pytest.mark.parametrize("query_class", [G1, G2, GC, G3, G4, G5])
    def test_generated_queries_classify_correctly(self, site, query_class):
        generator = QueryGenerator(site.database, seed=3)
        queries = generator.queries_for(query_class, 8)
        assert len(queries) == 8
        for query in queries:
            assert classify(site.database, query) == query_class

    def test_deterministic_given_seed(self, site):
        a = QueryGenerator(site.database, seed=9).queries_for(G1, 5)
        b = QueryGenerator(site.database, seed=9).queries_for(G1, 5)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_different_seeds_differ(self, site):
        a = QueryGenerator(site.database, seed=1).queries_for(G1, 5)
        b = QueryGenerator(site.database, seed=2).queries_for(G1, 5)
        assert [str(q) for q in a] != [str(q) for q in b]

    def test_table_whitelist_respected(self, site):
        generator = QueryGenerator(site.database, seed=4)
        queries = generator.queries_for(G1, 6, tables=["R1", "R2"])
        assert {q.table for q in queries} <= {"R1", "R2"}

    def test_g2_predicates_touch_indexed_column(self, site):
        generator = QueryGenerator(site.database, seed=5)
        for query in generator.queries_for(G2, 6):
            assert "a1" in query.predicate.columns()

    def test_join_queries_have_two_distinct_tables(self, site):
        generator = QueryGenerator(site.database, seed=6)
        for query in generator.queries_for(G3, 6):
            assert query.left != query.right
            assert query.left_column == query.right_column == "a4"

    def test_g5_joins_on_clustered_column(self, site):
        generator = QueryGenerator(site.database, seed=7)
        for query in generator.queries_for(G5, 4):
            assert query.left_column == "a2"

    def test_result_sizes_spread_widely(self, site):
        generator = QueryGenerator(site.database, seed=8)
        sizes = [
            site.database.execute(q).cardinality
            for q in generator.queries_for(G1, 25)
        ]
        assert max(sizes) > 20 * max(1, min(sizes))

    def test_unknown_class_rejected(self, site):
        from repro.core.classification import G6

        generator = QueryGenerator(site.database, seed=9)
        with pytest.raises(GenerationError):
            generator.queries_for(G6, 1)

    def test_missing_suitable_tables_rejected(self, site):
        generator = QueryGenerator(site.database, seed=10)
        with pytest.raises(GenerationError):
            # R1 is not clustered, so GC has no candidate tables.
            generator.queries_for(GC, 1, tables=["R1"])
