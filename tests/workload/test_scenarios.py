"""Unit tests for canned experimental sites."""

import pytest

from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.env.contention import ClusteredContention, ConstantContention, UniformContention
from repro.workload.scenarios import make_environment, make_site, paper_sites


class TestMakeEnvironment:
    def test_static(self):
        env = make_environment("static")
        assert isinstance(env.trace, ConstantContention)
        assert env.level() == 0.0

    def test_uniform(self):
        assert isinstance(make_environment("uniform", seed=1).trace, UniformContention)

    def test_clustered(self):
        assert isinstance(
            make_environment("clustered", seed=1).trace, ClusteredContention
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_environment("chaotic")


class TestMakeSite:
    def test_site_is_fully_wired(self):
        site = make_site("s", environment_kind="uniform", scale=0.01, seed=2)
        assert site.name == "s"
        assert site.database.environment is site.environment
        assert site.load_builder.environment is site.environment
        assert site.monitor.environment is site.environment
        assert len(site.database.catalog.table_names) == 12

    def test_scale_applied(self):
        site = make_site("s", scale=0.01, seed=2)
        assert site.database.catalog.table("R12").cardinality == 2500

    def test_same_seed_reproducible(self):
        a = make_site("a", scale=0.01, seed=5)
        b = make_site("b", scale=0.01, seed=5)
        assert a.database.catalog.table("R1").rows() == b.database.catalog.table(
            "R1"
        ).rows()


class TestPaperSites:
    def test_two_profiles(self):
        oracle, db2 = paper_sites(scale=0.01)
        assert oracle.database.profile is ORACLE_LIKE
        assert db2.database.profile is DB2_LIKE
        assert oracle.name == "oracle_site"
        assert db2.name == "db2_site"
