"""Unit tests for canned experimental sites."""

import pytest

from repro.engine.profiles import DB2_LIKE, ORACLE_LIKE
from repro.env.contention import ClusteredContention, ConstantContention, UniformContention
from repro.workload.scenarios import make_environment, make_site, paper_sites


class TestMakeEnvironment:
    def test_static(self):
        env = make_environment("static")
        assert isinstance(env.trace, ConstantContention)
        assert env.level() == 0.0

    def test_uniform(self):
        assert isinstance(make_environment("uniform", seed=1).trace, UniformContention)

    def test_clustered(self):
        assert isinstance(
            make_environment("clustered", seed=1).trace, ClusteredContention
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_environment("chaotic")


class TestMakeSite:
    def test_site_is_fully_wired(self):
        site = make_site("s", environment_kind="uniform", scale=0.01, seed=2)
        assert site.name == "s"
        assert site.database.environment is site.environment
        assert site.load_builder.environment is site.environment
        assert site.monitor.environment is site.environment
        assert len(site.database.catalog.table_names) == 12

    def test_scale_applied(self):
        site = make_site("s", scale=0.01, seed=2)
        assert site.database.catalog.table("R12").cardinality == 2500

    def test_same_seed_reproducible(self):
        a = make_site("a", scale=0.01, seed=5)
        b = make_site("b", scale=0.01, seed=5)
        assert a.database.catalog.table("R1").rows() == b.database.catalog.table(
            "R1"
        ).rows()


class TestPaperSites:
    def test_two_profiles(self):
        oracle, db2 = paper_sites(scale=0.01)
        assert oracle.database.profile is ORACLE_LIKE
        assert db2.database.profile is DB2_LIKE
        assert oracle.name == "oracle_site"
        assert db2.name == "db2_site"


class TestScenarioTraces:
    def make_builder(self, seed=3):
        from repro.env.loadbuilder import LoadBuilder

        env = make_environment("uniform", seed=seed)
        return LoadBuilder(env, seed=seed)

    def test_kind_vocabulary(self):
        from repro.workload.scenarios import SCENARIO_KINDS

        assert SCENARIO_KINDS == ("calm", "random_walk", "clustered", "regime_shift")

    def test_unknown_kind_raises(self):
        from repro.workload.scenarios import install_scenario_trace

        with pytest.raises(ValueError, match="unknown scenario kind"):
            install_scenario_trace(self.make_builder(), "storm", 0, 10)

    def test_shift_round_floor(self):
        from repro.workload.scenarios import scenario_shift_round

        assert scenario_shift_round(18) == 6
        assert scenario_shift_round(2) == 1  # never shifts at round 0

    def test_steady_kinds_never_report_shift(self):
        from repro.workload.scenarios import SCENARIO_KINDS, install_scenario_trace

        for kind in SCENARIO_KINDS:
            if kind == "regime_shift":
                continue
            builder = self.make_builder()
            assert install_scenario_trace(builder, kind, 0, 12) is False
            assert install_scenario_trace(builder, kind, 11, 12) is False

    def test_regime_shift_pins_contention_past_boundary(self):
        from repro.workload.scenarios import (
            SCENARIO_SHIFTED_LEVEL,
            install_scenario_trace,
            scenario_shift_round,
        )

        builder = self.make_builder()
        total = 12
        boundary = scenario_shift_round(total)
        assert install_scenario_trace(builder, "regime_shift", boundary - 1, total) is False
        assert isinstance(builder.environment.trace, UniformContention)
        assert install_scenario_trace(builder, "regime_shift", boundary, total) is True
        assert isinstance(builder.environment.trace, ConstantContention)
        assert builder.environment.trace.level_at(0.0) == SCENARIO_SHIFTED_LEVEL

    def test_reinstall_reproduces_the_same_trace(self):
        from repro.workload.scenarios import install_scenario_trace

        a, b = self.make_builder(seed=9), self.make_builder(seed=9)
        install_scenario_trace(a, "random_walk", 0, 10)
        install_scenario_trace(b, "random_walk", 0, 10)
        times = [30.0 * i for i in range(20)]
        assert [a.environment.trace.level_at(t) for t in times] == [
            b.environment.trace.level_at(t) for t in times
        ]
