"""Unit tests for timed workload traces and replay."""

import pytest

from repro.core.classification import G1, G2
from repro.engine.query import SelectQuery
from repro.workload.trace import (
    TraceEntry,
    WorkloadTrace,
    replay_trace,
)


class TestTraceConstruction:
    def test_entries_must_be_time_ordered(self):
        q = SelectQuery("t")
        with pytest.raises(ValueError):
            WorkloadTrace((TraceEntry(5.0, q), TraceEntry(1.0, q)))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(-1.0, SelectQuery("t"))

    def test_duration(self):
        q = SelectQuery("t")
        trace = WorkloadTrace((TraceEntry(1.0, q), TraceEntry(7.5, q)))
        assert trace.duration == 7.5
        assert len(trace) == 2
        assert WorkloadTrace(()).duration == 0.0

    def test_mixed_builds_requested_counts(self, session_site):
        trace = WorkloadTrace.mixed(
            session_site.generator, {G1: 5, G2: 3}, duration_seconds=600.0, seed=1
        )
        assert len(trace) == 8
        assert trace.duration <= 600.0
        times = [e.at_time for e in trace.entries]
        assert times == sorted(times)

    def test_mixed_deterministic(self, session_site):
        a = WorkloadTrace.mixed(session_site.generator, {G1: 4}, 100.0, seed=5)
        b = WorkloadTrace.mixed(session_site.generator, {G1: 4}, 100.0, seed=5)
        assert [e.at_time for e in a.entries] == [e.at_time for e in b.entries]

    def test_invalid_duration_rejected(self, session_site):
        with pytest.raises(ValueError):
            WorkloadTrace.mixed(session_site.generator, {G1: 1}, 0.0)


class TestReplay:
    def test_replay_reports_per_query(self, session_site, session_g1_build):
        builder, outcome = session_g1_build
        trace = WorkloadTrace.mixed(
            session_site.generator, {G1: 12}, duration_seconds=3600.0, seed=2
        )
        report = replay_trace(
            session_site.database,
            trace,
            {"G1": outcome.model},
            builder.probe,
        )
        assert len(report.records) == 12
        assert all(r.covered for r in report.records)
        assert all(r.class_label == "G1" for r in report.records)
        assert report.pct_good > 30.0

    def test_uncovered_classes_recorded_without_estimate(
        self, session_site, session_g1_build
    ):
        builder, outcome = session_g1_build
        trace = WorkloadTrace.mixed(
            session_site.generator, {G1: 3, G2: 3}, duration_seconds=600.0, seed=3
        )
        report = replay_trace(
            session_site.database, trace, {"G1": outcome.model}, builder.probe
        )
        by_class = report.by_class()
        assert all(r.covered for r in by_class["G1"])
        assert all(not r.covered for r in by_class["G2"])
        import math

        assert all(math.isnan(r.rel_error) for r in by_class["G2"])

    def test_clock_advances_to_arrivals(self, session_site, session_g1_build):
        builder, outcome = session_g1_build
        start = session_site.environment.now
        queries = session_site.generator.queries_for(G1, 2)
        trace = WorkloadTrace(
            (
                TraceEntry(start + 100.0, queries[0]),
                TraceEntry(start + 900.0, queries[1]),
            )
        )
        report = replay_trace(
            session_site.database, trace, {"G1": outcome.model}, builder.probe
        )
        assert session_site.environment.now >= start + 900.0
        assert report.records[0].at_time == start + 100.0

    def test_empty_report_percentages(self):
        from repro.workload.trace import ReplayReport

        report = ReplayReport()
        assert report.pct_good == 0.0
        assert report.pct_very_good == 0.0
